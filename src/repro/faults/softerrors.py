"""Memory soft errors: SEU bit flips in the *learned* control state.

:mod:`repro.faults.hardfaults` breaks the network, :mod:`~repro.faults.
sensors` breaks what the controller sees; this module breaks what the
controller *remembers*.  On silicon the per-router Q-table and the mode
registers live in SRAM, and SRAM takes single-event upsets — a flipped
Q-entry silently rewrites the learned policy, and a flipped mode register
drives the router datapath into a mode nobody selected.  The soft-hard
fault NoC literature (Dang et al., FASHION) treats upsets in control
state as a first-class threat; this model injects them so the SECDED
scrub + TMR defenses in :mod:`repro.core.qlearning` /
:mod:`repro.core.modes` can be demonstrated rather than asserted.

Spec grammar (one rule per ``;``-separated clause)::

    qtable@<rate>        e.g. qtable@1e-6   (per-bit per-epoch upset rate
                                             over all stored Q-table bits)
    mode@r<N>+<cycle>    e.g. mode@r3+500   (one-shot: flip one bit of
                                             router 3's mode register at
                                             the first epoch >= cycle 500)
    burst@<cycle>:<count> e.g. burst@800:4  (one-shot: flip <count> random
                                             Q-table bits at the first
                                             epoch >= cycle 800)

The empty string is upset-free SRAM (no rules).

Determinism contract (mirrors the sensor model):

* Rules are pure values with a canonical ``parse``/``format`` round trip.
* :meth:`SoftErrorModel.inject` runs once per epoch boundary and draws
  **exactly one** 64-bit token from the master RNG per rule per epoch,
  unconditionally — fired, expired, and not-yet-due rules all consume
  their token, so the master stream's length never depends on what the
  campaign did.  All variable-count sampling (how many bits, which
  positions) happens on a throwaway sub-RNG seeded from the token.
  Injection is therefore a pure function of (spec, seed, epoch sequence)
  on either cycle kernel, and a killed-and-resumed run replays the exact
  same upset stream: the whole model (master RNG, one-shot flags,
  tallies) pickles inside the simulator.
* Q-table bits are addressed through a global index over the storages'
  canonical word order (row insertion order x action index), which is
  itself deterministic for a deterministic simulation.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.specs import format_spec, parse_router_token, parse_spec

__all__ = [
    "SoftErrorRule",
    "SoftErrorModel",
    "parse_soft_error_spec",
    "format_soft_error_spec",
]

_KIND_ORDER = ("qtable", "mode", "burst")

#: width of the per-router mode register (four modes)
MODE_REGISTER_BITS = 2
#: TMR replication factor for mode registers
MODE_COPIES = 3


class SoftErrorRule:
    """One SEU source (see the module grammar)."""

    __slots__ = ("kind", "rate", "router", "cycle", "count")

    KINDS = _KIND_ORDER

    def __init__(
        self,
        kind: str,
        rate: float = 0.0,
        router: int = 0,
        cycle: int = 0,
        count: int = 0,
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown soft-error kind {kind!r}")
        if kind == "qtable":
            if not 0.0 < rate <= 1.0:
                raise ValueError("qtable upset rate must be in (0, 1]")
        if kind == "mode":
            if router < 0:
                raise ValueError("router id cannot be negative")
            if cycle < 0:
                raise ValueError("mode upset cycle cannot be negative")
        if kind == "burst":
            if cycle < 0:
                raise ValueError("burst cycle cannot be negative")
            if count <= 0:
                raise ValueError("burst flip count must be positive")
        self.kind = kind
        self.rate = rate
        self.router = router
        self.cycle = cycle
        self.count = count

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Canonical spec clause (inverse of :func:`parse_soft_error_spec`)."""
        if self.kind == "qtable":
            return f"qtable@{self.rate:g}"
        if self.kind == "mode":
            return f"mode@r{self.router}+{self.cycle}"
        return f"burst@{self.cycle}:{self.count}"

    def sort_key(self) -> Tuple[int, int, int, float, int]:
        return (_KIND_ORDER.index(self.kind), self.cycle, self.router,
                self.rate, self.count)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SoftErrorRule):
            return NotImplemented
        return self.format() == other.format()

    def __hash__(self) -> int:
        return hash(self.format())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SoftErrorRule({self.format()!r})"


def _parse_soft_error_clause(kind: str, rest: str) -> SoftErrorRule:
    if kind == "qtable":
        return SoftErrorRule("qtable", rate=float(rest))
    if kind == "mode":
        router_token, cycle = rest.split("+", 1)
        return SoftErrorRule(
            "mode", router=parse_router_token(router_token), cycle=int(cycle)
        )
    if kind == "burst":
        cycle, count = rest.split(":", 1)
        return SoftErrorRule("burst", cycle=int(cycle), count=int(count))
    raise ValueError(f"unknown soft-error kind {kind!r}")


def parse_soft_error_spec(spec: str) -> List[SoftErrorRule]:
    """Parse a ``;``-separated spec string into rules (canonical order)."""
    return parse_spec(
        spec, "soft-error", _parse_soft_error_clause, SoftErrorRule.sort_key
    )


def format_soft_error_spec(rules: Sequence[SoftErrorRule]) -> str:
    """Canonical spec string: ``parse(format(rules))`` round-trips."""
    return format_spec(rules, SoftErrorRule.sort_key)


def _poisson(rng: random.Random, lam: float) -> int:
    """Deterministic Poisson sample (flip count of a rare-event rate).

    Knuth's product method for small means; a clamped gaussian
    approximation above ``lam > 30`` where ``exp(-lam)`` would underflow
    (campaign rates are tiny, so this branch is a safety valve, not the
    common path)."""
    if lam <= 0.0:
        return 0
    if lam > 30.0:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


class SoftErrorModel:
    """Applies an SEU campaign to Q-table storages and mode registers.

    The simulator calls :meth:`inject` once at every epoch boundary,
    passing the live Q-table storages (objects exposing ``bit_count()``
    and ``flip_bit(index) -> word key``, i.e.
    :class:`repro.core.qlearning.QTableStorage`) and a mode-flip callback
    ``flip_mode(router_id, bit, copy)`` (``copy`` selects the TMR replica
    when the defense is on; the unprotected path ignores it).
    """

    def __init__(
        self,
        rules: Sequence[SoftErrorRule],
        num_routers: int,
        seed: int = 0,
    ) -> None:
        if num_routers <= 0:
            raise ValueError("need at least one router")
        for rule in rules:
            if rule.kind == "mode" and rule.router >= num_routers:
                raise ValueError(
                    f"soft-error rule {rule.format()!r} targets router "
                    f"{rule.router} but the mesh has only {num_routers} routers"
                )
        self.rules: List[SoftErrorRule] = sorted(rules, key=SoftErrorRule.sort_key)
        self.num_routers = num_routers
        self.rng = random.Random(seed)
        #: indices of one-shot rules (mode/burst) already fired
        self._done: set = set()
        #: cumulative upsets actually injected, per kind
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def spec(self) -> str:
        return format_soft_error_spec(self.rules)

    def _count(self, kind: str, n: int = 1) -> None:
        if n:
            self.injected[kind] = self.injected.get(kind, 0) + n

    @staticmethod
    def _flip_global(
        storages: Sequence[object],
        position: int,
        hits: Dict[Tuple[int, object], int],
    ) -> None:
        """Flip one bit at a global index spanning all storages."""
        for index, storage in enumerate(storages):
            bits = storage.bit_count()
            if position < bits:
                key = storage.flip_bit(position)
                hits[(index, key)] = hits.get((index, key), 0) + 1
                return
            position -= bits
        raise IndexError("global bit index out of range")  # pragma: no cover

    def inject(
        self,
        now: int,
        storages: Sequence[object],
        flip_mode: Optional[Callable[[int, int, int], None]] = None,
    ) -> Dict[str, int]:
        """Run one epoch of the campaign; returns this epoch's tallies.

        The returned dict carries per-kind flip counts plus the per-word
        classification the ECC acceptance contract pins down:
        ``words_single`` (storage words hit exactly once this epoch —
        exactly what a SECDED scrub must correct) and ``words_multi``
        (words hit twice or more — what it must detect or miscorrect).
        """
        hits: Dict[Tuple[int, object], int] = {}
        stats = {"qtable": 0, "burst": 0, "mode": 0}
        for index, rule in enumerate(self.rules):
            token = self.rng.getrandbits(64)  # unconditionally, every rule
            if rule.kind == "qtable":
                sub = random.Random(token)
                total = sum(s.bit_count() for s in storages)
                flips = _poisson(sub, total * rule.rate) if total else 0
                for _ in range(flips):
                    self._flip_global(storages, sub.randrange(total), hits)
                stats["qtable"] += flips
            elif rule.kind == "mode":
                if index in self._done or now < rule.cycle:
                    continue
                self._done.add(index)
                sub = random.Random(token)
                bit = sub.randrange(MODE_REGISTER_BITS)
                copy = sub.randrange(MODE_COPIES)
                if flip_mode is not None:
                    flip_mode(rule.router, bit, copy)
                stats["mode"] += 1
            else:  # burst
                if index in self._done or now < rule.cycle:
                    continue
                self._done.add(index)
                sub = random.Random(token)
                total = sum(s.bit_count() for s in storages)
                flips = min(rule.count, total)
                for _ in range(flips):
                    self._flip_global(storages, sub.randrange(total), hits)
                stats["burst"] += flips
        for kind, n in stats.items():
            self._count(kind, n)
        stats["flips"] = stats["qtable"] + stats["burst"]
        stats["words_single"] = sum(1 for n in hits.values() if n == 1)
        stats["words_multi"] = sum(1 for n in hits.values() if n >= 2)
        return stats
