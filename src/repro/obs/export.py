"""Metric timeline exporters (CSV and JSON).

Trace export lives in :mod:`repro.obs.trace` (JSONL is the only trace
format); this module handles the registry side: a JSON document with the
full snapshot + timeline, or a flat CSV of the per-epoch rows for
spreadsheet/pandas consumption.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Mapping

from repro.obs.metrics import MetricRegistry

__all__ = [
    "metrics_timeline_rows",
    "read_metrics_json",
    "registry_from_snapshot",
    "write_metrics_csv",
    "write_metrics_json",
]


def metrics_timeline_rows(registry: MetricRegistry) -> List[Dict[str, float]]:
    """Timeline rows normalised to a common column set.

    Instruments created mid-run leave early rows short; fill the gaps
    with 0 so CSV columns line up.
    """
    columns: List[str] = ["cycle"]
    seen = {"cycle"}
    for row in registry.timeline:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    out = []
    for row in registry.timeline:
        out.append({col: row.get(col, 0) for col in columns})
    return out


def write_metrics_csv(registry: MetricRegistry, path: str) -> int:
    """Write the per-epoch timeline as CSV; returns the row count."""
    rows = metrics_timeline_rows(registry)
    columns = list(rows[0].keys()) if rows else ["cycle"]
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def write_metrics_json(registry: MetricRegistry, path: str) -> None:
    """Write the full registry snapshot plus the timeline as JSON."""
    payload = {
        "snapshot": registry.snapshot(),
        "timeline": metrics_timeline_rows(registry),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_metrics_json(path: str) -> Dict[str, object]:
    """Read a :func:`write_metrics_json` document back; validates shape."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("snapshot"), dict)
        or not isinstance(payload.get("timeline"), list)
    ):
        raise ValueError(f"{path} is not a metrics JSON export")
    return payload


def registry_from_snapshot(payload: Mapping[str, object]) -> MetricRegistry:
    """Rebuild a registry from a :func:`read_metrics_json` payload.

    Inverse of :func:`write_metrics_json` up to the timeline zero-fill
    that :func:`metrics_timeline_rows` applies: re-exporting the rebuilt
    registry produces a byte-identical document, which is the round-trip
    contract the export tests pin down.
    """
    snapshot = payload["snapshot"]
    registry = MetricRegistry()
    for name, value in snapshot.get("counters", {}).items():
        registry.counter(name).inc(value)
    for name, value in snapshot.get("gauges", {}).items():
        registry.gauge(name).set(value)
    for name, data in snapshot.get("histograms", {}).items():
        hist = registry.histogram(name, bounds=tuple(data["bounds"]))
        hist.buckets = list(data["buckets"])
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        hist.min = data["min"]
        hist.max = data["max"]
    registry.timeline_dropped = int(snapshot.get("timeline_dropped", 0))
    for row in payload.get("timeline", []):
        registry.timeline.append(dict(row))
    return registry
