"""Metric timeline exporters (CSV and JSON).

Trace export lives in :mod:`repro.obs.trace` (JSONL is the only trace
format); this module handles the registry side: a JSON document with the
full snapshot + timeline, or a flat CSV of the per-epoch rows for
spreadsheet/pandas consumption.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from repro.obs.metrics import MetricRegistry

__all__ = ["metrics_timeline_rows", "write_metrics_csv", "write_metrics_json"]


def metrics_timeline_rows(registry: MetricRegistry) -> List[Dict[str, float]]:
    """Timeline rows normalised to a common column set.

    Instruments created mid-run leave early rows short; fill the gaps
    with 0 so CSV columns line up.
    """
    columns: List[str] = ["cycle"]
    seen = {"cycle"}
    for row in registry.timeline:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    out = []
    for row in registry.timeline:
        out.append({col: row.get(col, 0) for col in columns})
    return out


def write_metrics_csv(registry: MetricRegistry, path: str) -> int:
    """Write the per-epoch timeline as CSV; returns the row count."""
    rows = metrics_timeline_rows(registry)
    columns = list(rows[0].keys()) if rows else ["cycle"]
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def write_metrics_json(registry: MetricRegistry, path: str) -> None:
    """Write the full registry snapshot plus the timeline as JSON."""
    payload = {
        "snapshot": registry.snapshot(),
        "timeline": metrics_timeline_rows(registry),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
