"""A unified registry of counters, gauges, and histograms.

``NetworkStats`` keeps the hot per-flit tallies in ``__slots__`` for
speed and stays untouched; the registry is the *cool* layer above it —
run-level counters (reward-guard clamps, injector saturations, sweep
supervision totals) and per-epoch snapshots of derived gauges.  The
simulator ingests both into one namespace so exports see every tally
without reaching into module globals.

Non-finite hardening: a NaN or infinity written into an instrument
(``inc`` / ``set`` / ``record``) is clamped to zero and tallied under
the lazily-created ``metrics.guard`` counter — mirroring the reward
guard's clamp-and-count contract — so one poisoned producer cannot turn
a whole timeline into NaNs, and a healthy run's snapshot stays exactly
as before (the guard counter only exists once something tripped it).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "GUARD_COUNTER",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_BOUNDS",
]

#: registry counter that tallies clamped non-finite writes
GUARD_COUNTER = "metrics.guard"


def _guard_value(value: float, guard: Optional[Callable[[], None]]) -> float:
    """Clamp a non-finite write to 0, tallying it via ``guard``."""
    if isinstance(value, float) and not math.isfinite(value):
        if guard is not None:
            guard()
        return 0.0
    return value

#: Default histogram bucket upper bounds (latency-style, in cycles).
DEFAULT_BOUNDS: Tuple[float, ...] = (
    10.0,
    20.0,
    40.0,
    80.0,
    160.0,
    320.0,
    640.0,
    1280.0,
)


class Counter:
    """Monotonic within a run; reset only between runs."""

    __slots__ = ("value", "guard")

    def __init__(self, guard: Optional[Callable[[], None]] = None) -> None:
        self.value = 0
        self.guard = guard

    def inc(self, amount: int = 1) -> None:
        self.value += _guard_value(amount, self.guard)

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("value", "guard")

    def __init__(self, guard: Optional[Callable[[], None]] = None) -> None:
        self.value = 0.0
        self.guard = guard

    def set(self, value: float) -> None:
        self.value = _guard_value(value, self.guard)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bound bucket histogram with running sum/min/max.

    ``merge`` is associative and commutative (pure element-wise sums
    plus min/max), which the hypothesis property tests pin down — the
    sweep supervisor relies on it when folding worker results together.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max", "guard")

    def __init__(
        self,
        bounds: Sequence[float] = DEFAULT_BOUNDS,
        guard: Optional[Callable[[], None]] = None,
    ) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        # one bucket per bound plus the overflow bucket
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.guard = guard

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        value = _guard_value(value, self.guard)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.buckets[idx] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        for bound_attr in ("min", "max"):
            theirs = getattr(other, bound_attr)
            if theirs is None:
                continue
            mine = getattr(self, bound_attr)
            if mine is None:
                setattr(self, bound_attr, theirs)
            elif bound_attr == "min":
                self.min = min(mine, theirs)
            else:
                self.max = max(mine, theirs)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        # totals are float sums, so reassociating merges perturbs the
        # last bits — compare with a relative tolerance, not exactly
        scale = max(1.0, abs(self.total), abs(other.total))
        return (
            self.bounds == other.bounds
            and self.buckets == other.buckets
            and self.count == other.count
            and abs(self.total - other.total) <= 1e-9 * scale
            and self.min == other.min
            and self.max == other.max
        )


class MetricRegistry:
    """Named metric namespace with a bounded per-epoch timeline.

    Instruments are created on first access (``counter("a.b")``), so the
    producers don't need a shared schema; ``snapshot_epoch`` appends one
    flat row of every scalar instrument to :attr:`timeline` (histograms
    are snapshot-only — they appear in :meth:`snapshot`, not rows).
    """

    def __init__(self, max_timeline: int = 4096) -> None:
        if max_timeline < 1:
            raise ValueError("max_timeline must be positive")
        self.max_timeline = max_timeline
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.timeline: List[Dict[str, float]] = []
        self.timeline_dropped = 0

    # ------------------------------------------------------------------
    def _guard_event(self) -> None:
        """One non-finite write was clamped somewhere in this registry.

        The tally counter is created lazily on the first event so a
        healthy run's snapshot carries no ``metrics.guard`` instrument
        (it is itself created guard-free — its increments are always 1).
        """
        inst = self._counters.get(GUARD_COUNTER)
        if inst is None:
            inst = self._counters[GUARD_COUNTER] = Counter()
        inst.inc()

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            guard = None if name == GUARD_COUNTER else self._guard_event
            inst = self._counters[name] = Counter(guard=guard)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(guard=self._guard_event)
        return inst

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(bounds, guard=self._guard_event)
        return inst

    def peek(self, name: str) -> float:
        """Read a counter/gauge value without creating the instrument.

        Lets reports ask "how many sensor rejects?" after a healthy run
        without polluting its snapshot with zero-valued instruments.
        """
        inst = self._counters.get(name) or self._gauges.get(name)
        return inst.value if inst is not None else 0

    def ingest(self, prefix: str, values: Mapping[str, object]) -> None:
        """Absorb a plain mapping of numeric tallies as gauges."""
        for key, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.gauge(f"{prefix}.{key}").set(value)

    # ------------------------------------------------------------------
    def scalars(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        return out

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
            "timeline_rows": len(self.timeline),
            "timeline_dropped": self.timeline_dropped,
        }

    def snapshot_epoch(self, cycle: int) -> Dict[str, float]:
        row: Dict[str, float] = {"cycle": cycle}
        row.update(sorted(self.scalars().items()))
        if len(self.timeline) >= self.max_timeline:
            self.timeline.pop(0)
            self.timeline_dropped += 1
        self.timeline.append(row)
        return row

    # ------------------------------------------------------------------
    def names(self) -> Dict[str, Iterable[str]]:
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "histograms": sorted(self._histograms),
        }

    def reset(self) -> None:
        """Zero every instrument and clear the timeline (between runs)."""
        for c in self._counters.values():
            c.reset()
        for g in self._gauges.values():
            g.reset()
        for h in self._histograms.values():
            h.reset()
        self.timeline.clear()
        self.timeline_dropped = 0
