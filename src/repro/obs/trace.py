"""Typed event tracing with bounded memory and category filters.

Events are deliberately coarse: hook sites fire at *event* frequency
(a mode actually changing, a link dying, a watchdog poll every
``watchdog_interval`` cycles) rather than per flit or per cycle, so an
attached tracer costs a handful of attribute lookups per rare event and
an unattached one costs a single ``is not None`` test.

The canonical stream digest — :func:`trace_digest` — hashes the sorted
JSON encoding of every event.  By default the ``checkpoint`` category is
excluded so a run resumed from a snapshot digests identically to the
uninterrupted run (the resume adds exactly one ``checkpoint/restore``
event; everything else is bit-identical by the determinism contract).
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "CATEGORIES",
    "TraceEvent",
    "TraceBuffer",
    "trace_digest",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "parse_categories",
]

#: The closed event taxonomy (DESIGN.md §12).  ``emit`` rejects anything
#: else so golden traces cannot silently grow untested event families.
CATEGORIES: Tuple[str, ...] = (
    "mode",  # router operation-mode transitions (requested + applied)
    "rl",  # per-router Q-learning decisions at epoch boundaries
    "fault",  # hard-fault kills, in-flight recoveries, drops
    "watchdog",  # invariant heartbeats, trips, safe-mode entries
    "reward",  # reward-guard clamps of non-finite reward inputs
    "retx",  # end-to-end CRC retransmission requests
    "checkpoint",  # snapshot save/restore markers
    "sensor",  # telemetry corruption defenses: rejects, quarantines, debounces
    "ecc",  # Q-table/mode-register scrubbing: corrections, detections, quarantines
    "campaign",  # paper-figure campaigns: artifact build/reuse, grid completion
)

_CATEGORY_SET = frozenset(CATEGORIES)

#: Categories excluded from the canonical digest (see module docstring).
DIGEST_EXCLUDE: Tuple[str, ...] = ("checkpoint",)


class TraceEvent:
    """One timestamped observation.

    ``cycle`` is the network clock when the event fired, ``category``
    one of :data:`CATEGORIES`, ``kind`` a short event name within the
    category, ``subject`` the router/NI id (or ``None`` for network-wide
    events), and ``data`` a flat JSON-scalar payload.
    """

    __slots__ = ("cycle", "category", "kind", "subject", "data")

    def __init__(
        self,
        cycle: int,
        category: str,
        kind: str,
        subject: Optional[int] = None,
        data: Optional[Dict[str, object]] = None,
    ) -> None:
        self.cycle = cycle
        self.category = category
        self.kind = kind
        self.subject = subject
        self.data = data if data is not None else {}

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "cycle": self.cycle,
            "category": self.category,
            "kind": self.kind,
        }
        if self.subject is not None:
            out["subject"] = self.subject
        if self.data:
            out["data"] = self.data
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TraceEvent":
        category = payload["category"]
        if category not in _CATEGORY_SET:
            raise ValueError(f"unknown trace category {category!r}")
        return cls(
            cycle=int(payload["cycle"]),
            category=str(category),
            kind=str(payload["kind"]),
            subject=payload.get("subject"),
            data=dict(payload.get("data", {})),
        )

    def to_json(self) -> str:
        """Canonical single-line encoding (sorted keys, no whitespace)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        return cls.from_dict(json.loads(line))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent(cycle={self.cycle}, category={self.category!r}, "
            f"kind={self.kind!r}, subject={self.subject!r}, data={self.data!r})"
        )


class TraceBuffer:
    """Bounded ring buffer of :class:`TraceEvent` with category filters.

    * ``capacity`` bounds memory: once full, the oldest events are
      evicted and counted in :attr:`dropped` (``emitted`` always counts
      every event that passed the filter, so
      ``dropped == emitted - len(buffer)`` holds as an invariant).
    * ``categories`` — ``None`` records everything; otherwise only the
      named categories are stored and the rest are tallied in
      :attr:`filtered`.
    """

    def __init__(
        self,
        capacity: int = 65536,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace buffer capacity must be positive")
        self.capacity = capacity
        if categories is None:
            self.categories: Optional[frozenset] = None
        else:
            wanted = frozenset(categories)
            unknown = wanted - _CATEGORY_SET
            if unknown:
                raise ValueError(f"unknown trace categories: {sorted(unknown)}")
            self.categories = wanted
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0  # events accepted past the category filter
        self.filtered = 0  # events rejected by the category filter

    # ------------------------------------------------------------------
    def wants(self, category: str) -> bool:
        """Cheap pre-check so hook sites can skip building payloads."""
        return self.categories is None or category in self.categories

    def emit(
        self,
        cycle: int,
        category: str,
        kind: str,
        subject: Optional[int] = None,
        **data: object,
    ) -> None:
        if category not in _CATEGORY_SET:
            raise ValueError(f"unknown trace category {category!r}")
        if self.categories is not None and category not in self.categories:
            self.filtered += 1
            return
        self.emitted += 1
        self._events.append(TraceEvent(cycle, category, kind, subject, data))

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (oldest-first)."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, categories: Optional[Iterable[str]] = None) -> List[TraceEvent]:
        if categories is None:
            return list(self._events)
        wanted = frozenset(categories)
        return [ev for ev in self._events if ev.category in wanted]

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0
        self.filtered = 0

    # ------------------------------------------------------------------
    def digest(self, exclude: Sequence[str] = DIGEST_EXCLUDE) -> str:
        return trace_digest(self._events, exclude=exclude)

    def summary(self) -> Dict[str, object]:
        by_category: Dict[str, int] = {}
        by_kind: Dict[str, int] = {}
        for ev in self._events:
            by_category[ev.category] = by_category.get(ev.category, 0) + 1
            key = f"{ev.category}/{ev.kind}"
            by_kind[key] = by_kind.get(key, 0) + 1
        first = self._events[0].cycle if self._events else None
        last = self._events[-1].cycle if self._events else None
        return {
            "events": len(self._events),
            "emitted": self.emitted,
            "dropped": self.dropped,
            "filtered": self.filtered,
            "capacity": self.capacity,
            "first_cycle": first,
            "last_cycle": last,
            "by_category": dict(sorted(by_category.items())),
            "by_kind": dict(sorted(by_kind.items())),
        }


# ----------------------------------------------------------------------
def trace_digest(
    events: Iterable[TraceEvent], exclude: Sequence[str] = DIGEST_EXCLUDE
) -> str:
    """sha256 over the canonical JSONL encoding of the event stream."""
    skip = frozenset(exclude)
    h = hashlib.sha256()
    for ev in events:
        if ev.category in skip:
            continue
        h.update(ev.to_json().encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def write_trace_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Dump events one JSON object per line; returns the event count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(ev.to_json())
            fh.write("\n")
            count += 1
    return count


def read_trace_jsonl(path: str) -> List[TraceEvent]:
    out: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent.from_json(line))
    return out


def parse_categories(spec: Optional[str]) -> Optional[Tuple[str, ...]]:
    """Parse a ``--trace-filter`` value like ``"mode,fault,watchdog"``.

    Empty/None means "all categories" (returns ``None``).
    """
    if not spec:
        return None
    names = tuple(part.strip() for part in spec.split(",") if part.strip())
    unknown = set(names) - _CATEGORY_SET
    if unknown:
        raise ValueError(
            f"unknown trace categories {sorted(unknown)}; "
            f"valid: {', '.join(CATEGORIES)}"
        )
    return names
