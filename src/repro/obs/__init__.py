"""Structured observability: event tracing and a unified metric registry.

The simulator, network, watchdog, and sweep supervisor historically kept
ad-hoc tallies (``NetworkStats`` slots, the ``REWARD_GUARD`` module
global, ``FaultInjector.saturation_events``, ``SweepReport`` fields) and
no event-level record at all — end-of-run aggregates could not answer
*when* a router switched modes or *why* an agent picked an action.

This package adds two cross-cutting primitives:

* :class:`~repro.obs.trace.TraceBuffer` — a bounded ring buffer of typed
  :class:`~repro.obs.trace.TraceEvent` records (mode transitions, RL
  decisions, hard-fault kills/recoveries, watchdog heartbeats/trips,
  reward-guard clamps, CRC retransmissions, checkpoint save/restore)
  with category filters and a canonical stream digest for golden tests.
* :class:`~repro.obs.metrics.MetricRegistry` — named counters, gauges,
  and latency-style histograms with per-epoch timeline snapshots.

Both are strictly opt-in: every hook site in the hot kernels guards on
``tracer is not None`` at *event* frequency (never per flit or per
cycle), so a run with tracing disabled is bit-identical to the
pre-observability code paths — enforced by the ``traced`` bench scenario
and the digest gates against ``BENCH_kernel.json``.
"""

from repro.obs.trace import (
    CATEGORIES,
    TraceBuffer,
    TraceEvent,
    parse_categories,
    read_trace_jsonl,
    trace_digest,
    write_trace_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.export import (
    metrics_timeline_rows,
    read_metrics_json,
    registry_from_snapshot,
    write_metrics_csv,
    write_metrics_json,
)

__all__ = [
    "CATEGORIES",
    "TraceBuffer",
    "TraceEvent",
    "parse_categories",
    "read_trace_jsonl",
    "trace_digest",
    "write_trace_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "metrics_timeline_rows",
    "read_metrics_json",
    "registry_from_snapshot",
    "write_metrics_csv",
    "write_metrics_json",
]
