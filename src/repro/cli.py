"""Command-line interface: run experiments without writing Python.

Eight subcommands:

``run``
    One (design, benchmark) measurement with the full phase structure.
    ``--checkpoint FILE --checkpoint-every N`` snapshots the whole
    simulation every N cycles so a killed run can be continued.
    ``--profile`` wraps the run in cProfile and prints the hottest
    functions plus the cycle kernel's activity counters to stderr.
``resume``
    Continue a checkpointed ``run`` from its snapshot file; the final
    metrics are bit-identical to an uninterrupted run.
``compare``
    All four designs on one benchmark, metrics normalized to CRC.
``sweep``
    The classic NoC load sweep: latency vs offered load for one design,
    showing where the saturation knee falls.
``chaos``
    Graceful-degradation campaigns: routing policies crossed with
    hard-fault schedules (link/router kills, error bursts), reporting
    delivered fraction, reroutes, drops, and post-fault latency.
    With ``--sensor-spec`` the campaign instead targets the *control
    plane*: full closed-loop designs run under corrupted telemetry
    (stuck-at, dropout, noise, staleness) and report what the hardened
    observation path absorbed (rejects, holds, quarantines, debounced
    switches) alongside delivered fraction.
    With ``--soft-error-spec`` the campaign targets the *learning
    state*: SEUs flip bits in the Q-table SRAM and mode registers, and
    the report shows what the SECDED scrubber corrected/detected/
    quarantined (or, with ``--no-ecc``, what the upsets did unopposed).
``bench``
    Kernel throughput benchmark (fast vs naive cycle kernel) over the
    idle/saturated/chaos/traced scenarios; ``--check BENCH_kernel.json``
    fails on a speedup-ratio regression or a result-digest mismatch,
    ``--output`` appends the run to the trajectory file.
``trace``
    Inspect a JSONL event trace written by ``run/resume/chaos --trace``:
    per-category summary, ``--tail N`` events, the canonical stream
    digest, or a filtered JSON dump.
``campaign``
    The paper-figure grid (benchmarks x designs) behind Figs 6-10.
    Each trainable design is pre-trained exactly once and persisted as
    a versioned, CRC-guarded artifact under ``--artifact-dir``; every
    grid cell clones a fresh policy from that artifact, so results are
    bit-identical across benchmark orderings and ``--jobs`` settings.
    Emits the normalized per-benchmark + geomean tables as Markdown
    (default), ``--json``, or to ``--report-json`` / ``--report-md``
    files — the exact tables EXPERIMENTS.md embeds.

``compare``, ``sweep``, ``chaos``, and ``campaign`` are grids of independent
simulations, so all go through :mod:`repro.sim.sweep`: ``--jobs N`` fans
points out over supervised worker processes (``--jobs 1`` runs the
identical code serially), and every finished point is cached under
``--cache-dir`` (default ``.sweep_cache/``) so re-runs and interrupted
grids resume without re-simulating.  ``--no-cache`` forces fresh
simulations; ``--point-timeout`` bounds each point's wall clock and
``--retries`` bounds how often a crashed/hung point is relaunched before
it is quarantined (reported, result slot skipped, sweep continues).

Examples::

    python -m repro.cli run --design rl --benchmark canneal
    python -m repro.cli run --design rl --checkpoint rl.ckpt --checkpoint-every 5000
    python -m repro.cli resume rl.ckpt
    python -m repro.cli compare --benchmark x264 --width 4 --height 4
    python -m repro.cli sweep --design arq_ecc --pattern transpose --jobs 4
    python -m repro.cli chaos --routings xy,adaptive --fault-specs 'link@500:5E'
    python -m repro.cli run --design rl --fault-spec 'router@20000:5' --trace run.jsonl
    python -m repro.cli chaos --routings adaptive --trace chaos.jsonl
    python -m repro.cli chaos --sensor-spec 'drop@0.2:util;stuck@r5.temp=0.9'
    python -m repro.cli run --design rl --sensor-spec 'noise@0.05:nack' --hysteresis 2
    python -m repro.cli chaos --soft-error-spec 'qtable@1e-5;burst@800:4'
    python -m repro.cli run --design rl --soft-error-spec 'qtable@1e-5' --no-ecc
    python -m repro.cli trace run.jsonl --tail 10
    python -m repro.cli campaign --jobs 4 --report-md tables.md
    python -m repro.cli campaign --benchmarks canneal,x264 --designs crc,rl
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.baselines import DecisionTreePolicy, arq_ecc_policy, crc_policy
from repro.core.rl_policy import RLControlPolicy
from repro.sim import (
    DEFAULT_ARTIFACT_DIR,
    DESIGN_ORDER,
    CampaignSpec,
    Simulator,
    SweepRunner,
    SweepSpec,
    campaign_report,
    merge_trace_grid,
    normalize_to_baseline,
    render_report_markdown,
    run_campaign,
    scaled_config,
    stderr_progress,
    synthesize_benchmark_trace,
)
from repro.faults import parse_fault_spec, parse_sensor_spec, parse_soft_error_spec
from repro.noc.routing import ROUTING_FUNCTIONS
from repro.obs import (
    CATEGORIES as TRACE_CATEGORIES,
    MetricRegistry,
    TraceBuffer,
    parse_categories,
    read_trace_jsonl,
    trace_digest,
    write_metrics_csv,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.sim.bench import (
    SCENARIOS as BENCH_SCENARIOS,
    check_digests,
    check_regression,
    format_report,
    run_bench,
)
from repro.sim.checkpoint import CheckpointError, ResumableRun, read_checkpoint_meta
from repro.sim.sweep import (
    DEFAULT_CACHE_DIR,
    _eval_chaos,
    _eval_sensor_chaos,
    _eval_soft_error,
    _payload_to_result,
)
from repro.traffic import PARSEC_PROFILES

__all__ = ["main", "build_parser", "make_policy"]


def make_policy(design: str, seed: int = 0):
    """Instantiate one of the four compared control policies."""
    factories = {
        "crc": crc_policy,
        "arq_ecc": arq_ecc_policy,
        "dt": DecisionTreePolicy,
        "rl": lambda: RLControlPolicy(share_table=True, seed=seed),
    }
    try:
        return factories[design]()
    except KeyError:
        raise ValueError(
            f"unknown design {design!r}; pick one of {', '.join(DESIGN_ORDER)}"
        ) from None


def _validate_spec(spec: str, parser_fn, flag: str) -> None:
    """Fail fast on a malformed fault/sensor spec: one line naming the
    bad clause via SystemExit, never a traceback.  Shared by every
    subcommand that accepts either grammar."""
    if not spec:
        return
    try:
        parser_fn(spec)
    except ValueError as exc:
        raise SystemExit(f"{flag}: {exc}") from None


def _config_from_args(args) -> "SimulationConfig":
    return scaled_config(
        width=args.width,
        height=args.height,
        epoch_cycles=args.epoch,
        pretrain_cycles=args.pretrain,
        warmup_cycles=args.warmup,
        fault_spec=getattr(args, "fault_spec", "") or "",
        sensor_spec=getattr(args, "sensor_spec", "") or "",
        sensor_defenses=not getattr(args, "no_sensor_defenses", False),
        mode_hysteresis_epochs=getattr(args, "hysteresis", 0) or 0,
        soft_error_spec=getattr(args, "soft_error_spec", "") or "",
        ecc_protect=not getattr(args, "no_ecc", False),
        scrub_every=getattr(args, "scrub_every", 1),
    )


def _add_platform_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=4, help="mesh width (paper: 8)")
    parser.add_argument("--height", type=int, default=4, help="mesh height (paper: 8)")
    parser.add_argument("--epoch", type=int, default=250, help="control epoch cycles (paper: 1000)")
    parser.add_argument("--pretrain", type=int, default=60_000, help="pre-training cycles (paper: 1e6)")
    parser.add_argument("--warmup", type=int, default=2_000, help="warm-up cycles (paper: 3e5)")
    parser.add_argument("--trace-cycles", type=int, default=3_000, help="trace injection span")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")


def _add_sweep_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for grid points (1 = serial, identical results)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="result cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the result cache",
    )
    parser.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry a point running longer than this (parallel only)",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="relaunches per failing point before quarantine (default: %(default)s)",
    )


def _add_sensor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sensor-spec", default="", metavar="SPEC",
        help="telemetry corruption applied to the observation path, e.g. "
        "'drop@0.2:util;stuck@r5.temp=0.9;noise@0.05:nack;stale@r7+400:8' "
        "('' = clean sensors)",
    )
    parser.add_argument(
        "--hysteresis", type=int, default=0, metavar="EPOCHS",
        help="minimum epochs between mode switches per router "
        "(0 = switch freely; debounces noise-driven flapping)",
    )


def _add_soft_error_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--soft-error-spec", default="", metavar="SPEC",
        help="SEU campaign applied to the learning state, e.g. "
        "'qtable@1e-5;mode@r3+500;burst@800:4' ('' = upset-free SRAM)",
    )
    parser.add_argument(
        "--scrub-every", type=int, default=1, metavar="EPOCHS",
        help="epochs between ECC scrub passes (0 = never scrub; "
        "default: %(default)s)",
    )
    parser.add_argument(
        "--no-ecc", action="store_true",
        help="store Q-tables as raw words and mode registers without "
        "TMR: upsets land directly in the learning state",
    )


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record an event trace and write it to FILE as JSONL",
    )
    parser.add_argument(
        "--trace-filter", default=None, metavar="CATS",
        help="comma-separated categories to record (default: all): "
        + ", ".join(TRACE_CATEGORIES),
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=65536, metavar="EVENTS",
        help="trace ring-buffer capacity; oldest events are dropped "
        "beyond this (default: %(default)s)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the per-epoch metric timeline (CSV if FILE ends in "
        ".csv, else JSON snapshot + timeline)",
    )


def _make_tracer(args) -> Optional[TraceBuffer]:
    if getattr(args, "trace", None) is None:
        if getattr(args, "trace_filter", None):
            raise SystemExit("--trace-filter requires --trace FILE")
        return None
    try:
        categories = parse_categories(args.trace_filter)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return TraceBuffer(capacity=args.trace_capacity, categories=categories)


def _export_observability(args, tracer, registry) -> None:
    """Write the ``--trace`` / ``--metrics`` outputs after a run."""
    if getattr(args, "trace", None) and tracer is not None:
        count = write_trace_jsonl(tracer, args.trace)
        print(
            f"[trace] {count} event(s) -> {args.trace} "
            f"(digest {tracer.digest()[:12]}, dropped {tracer.dropped}, "
            f"filtered {tracer.filtered})",
            file=sys.stderr,
        )
    if getattr(args, "metrics", None) and registry is not None:
        if args.metrics.endswith(".csv"):
            rows = write_metrics_csv(registry, args.metrics)
            print(f"[metrics] {rows} timeline row(s) -> {args.metrics}", file=sys.stderr)
        else:
            write_metrics_json(registry, args.metrics)
            print(f"[metrics] snapshot + timeline -> {args.metrics}", file=sys.stderr)


def _make_runner(spec: SweepSpec, args) -> SweepRunner:
    return SweepRunner(
        spec,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=stderr_progress,
        point_timeout=args.point_timeout,
        max_retries=args.retries,
    )


def _print_quarantine(runner: SweepRunner) -> None:
    report = runner.report
    if report is not None and report.quarantined:
        print(
            f"[sweep] {len(report.quarantined)} point(s) quarantined: "
            + ", ".join(report.quarantined),
            file=sys.stderr,
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RL-based fault-tolerant NoC (DATE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one (design, benchmark) measurement")
    run.add_argument("--design", default="rl", help=f"one of {', '.join(DESIGN_ORDER)}")
    run.add_argument("--benchmark", default="canneal", help="PARSEC benchmark name")
    run.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="snapshot the run to FILE so it can be resumed after a crash",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=5_000, metavar="CYCLES",
        help="cycles between snapshots (default: %(default)s)",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="profile the run; print hot functions + kernel activity counters",
    )
    run.add_argument(
        "--fault-spec", default="", metavar="SPEC",
        help="hard-fault campaign applied during the run, e.g. "
        "'router@20000:5' ('' = healthy platform)",
    )
    _add_sensor_args(run)
    run.add_argument(
        "--no-sensor-defenses", action="store_true",
        help="disable the hardened observation path (raw corrupted "
        "telemetry reaches the control policy; may crash on dropout)",
    )
    _add_soft_error_args(run)
    _add_platform_args(run)
    _add_trace_args(run)

    resume = sub.add_parser(
        "resume", help="continue a checkpointed run (bit-identical result)"
    )
    resume.add_argument("snapshot", help="checkpoint file written by 'run --checkpoint'")
    resume.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="CYCLES",
        help="override the snapshot cadence (default: keep the original)",
    )
    resume.add_argument("--json", action="store_true", help="emit JSON instead of text")
    resume.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write the snapshot's event trace (if the original run was "
        "traced) to FILE as JSONL after the run completes",
    )
    resume.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the metric timeline (CSV if FILE ends in .csv, else JSON)",
    )

    comp = sub.add_parser("compare", help="all four designs on one benchmark")
    comp.add_argument("--benchmark", default="canneal")
    _add_platform_args(comp)
    _add_sweep_args(comp)

    sweep = sub.add_parser("sweep", help="latency vs offered load for one design")
    sweep.add_argument("--design", default="crc")
    sweep.add_argument("--pattern", default="uniform", help="synthetic traffic pattern")
    sweep.add_argument(
        "--rates",
        default="0.005,0.01,0.02,0.03,0.04",
        help="comma-separated packet injection rates",
    )
    sweep.add_argument("--span", type=int, default=3_000, help="injection cycles per point")
    _add_platform_args(sweep)
    _add_sweep_args(sweep)

    chaos = sub.add_parser(
        "chaos", help="routing policies under hard-fault campaigns "
        "(with --sensor-spec: control designs under corrupted telemetry; "
        "with --soft-error-spec: designs under SEUs in the learning state)"
    )
    chaos.add_argument(
        "--routings", default="xy,adaptive",
        help=f"comma-separated routing policies ({', '.join(sorted(ROUTING_FUNCTIONS))})",
    )
    chaos.add_argument(
        "--fault-specs", default=None,
        help="'|'-separated campaign specs, e.g. "
        "'link@500:5E|router@800:7;burst@300+200:0.2' ('' = healthy "
        "baseline; default: link@500:5E, or '' when --sensor-spec is given)",
    )
    chaos.add_argument(
        "--designs", default="rl",
        help="comma-separated control designs for --sensor-spec campaigns "
        f"({', '.join(DESIGN_ORDER)})",
    )
    _add_sensor_args(chaos)
    chaos.add_argument(
        "--no-sensor-defenses", action="store_true",
        help="run the sensor campaign without the hardened observation path",
    )
    _add_soft_error_args(chaos)
    chaos.add_argument(
        "--rate", type=float, default=0.1,
        help="per-cycle uniform packet injection probability",
    )
    chaos.add_argument("--span", type=int, default=3_000, help="injection cycles per point")
    _add_platform_args(chaos)
    _add_sweep_args(chaos)
    _add_trace_args(chaos)

    bench = sub.add_parser(
        "bench", help="fast-vs-naive cycle-kernel throughput benchmark"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="reduced cycle counts (CI smoke scale)",
    )
    bench.add_argument(
        "--scenarios", default=None,
        help="comma-separated subset of: " + ", ".join(BENCH_SCENARIOS),
    )
    bench.add_argument("--width", type=int, default=4, help="mesh width")
    bench.add_argument("--height", type=int, default=4, help="mesh height")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--check", default=None, metavar="FILE",
        help="compare speedup ratios against the latest entry of FILE; "
        "exit 1 on regression",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed fractional speedup erosion for --check (default: %(default)s)",
    )
    bench.add_argument(
        "--output", default=None, metavar="FILE",
        help="append this run as a new entry of the trajectory FILE",
    )
    bench.add_argument(
        "--label", default=None,
        help="label recorded with the --output entry",
    )
    bench.add_argument("--json", action="store_true", help="emit JSON instead of text")

    camp = sub.add_parser(
        "campaign",
        help="paper-figure grid (Figs 6-10): pretrain-once artifacts, "
        "cached benchmarks x designs cells, normalized report tables",
    )
    camp.add_argument(
        "--benchmarks", default=None,
        help="comma-separated PARSEC benchmarks (default: all "
        f"{len(PARSEC_PROFILES)}, sorted)",
    )
    camp.add_argument(
        "--designs", default=",".join(DESIGN_ORDER),
        help="comma-separated designs (default: %(default)s)",
    )
    camp.add_argument(
        "--artifact-dir", default=DEFAULT_ARTIFACT_DIR,
        help="pretrained-policy artifact store (default: %(default)s)",
    )
    camp.add_argument(
        "--refresh-artifacts", action="store_true",
        help="re-pretrain even when a matching artifact exists",
    )
    camp.add_argument(
        "--report-json", default=None, metavar="FILE",
        help="also write the normalized report as JSON to FILE",
    )
    camp.add_argument(
        "--report-md", default=None, metavar="FILE",
        help="also write the normalized report as Markdown to FILE",
    )
    _add_platform_args(camp)
    _add_sweep_args(camp)
    _add_trace_args(camp)

    trace = sub.add_parser("trace", help="inspect a JSONL event trace")
    trace.add_argument("file", help="trace file written by run/resume/chaos --trace")
    trace.add_argument(
        "--filter", default=None, metavar="CATS", dest="categories",
        help="comma-separated categories to keep: " + ", ".join(TRACE_CATEGORIES),
    )
    trace.add_argument(
        "--digest", action="store_true",
        help="print the canonical stream digest (checkpoint events "
        "excluded) and exit",
    )
    trace.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="also print the last N (filtered) events",
    )
    trace.add_argument(
        "--json", action="store_true",
        help="dump the (filtered) events as a JSON array",
    )

    return parser


def _check_benchmark(name: str) -> None:
    if name not in PARSEC_PROFILES:
        raise SystemExit(
            f"unknown benchmark {name!r}; pick one of {', '.join(sorted(PARSEC_PROFILES))}"
        )


def _print_result(result, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        for key, value in result.as_dict().items():
            print(f"{key:26s} {value}")


def _print_profile(profiler, network) -> None:
    """Hot-function table plus the kernel's activity counters (stderr)."""
    import io
    import pstats

    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(20)
    print(buf.getvalue(), file=sys.stderr)
    counters = network.activity.counters()
    print(f"[profile] cycle kernel: {network.kernel}", file=sys.stderr)
    for name, value in counters.items():
        print(f"[profile] {name:24s} {value}", file=sys.stderr)
    total = network.now
    if total > 0:
        skipped = counters["fast_forwarded_cycles"]
        print(
            f"[profile] {skipped} of {total} cycles "
            f"({skipped / total:.1%}) fast-forwarded",
            file=sys.stderr,
        )


def cmd_run(args) -> int:
    _check_benchmark(args.benchmark)
    _validate_spec(args.fault_spec, parse_fault_spec, "--fault-spec")
    _validate_spec(args.sensor_spec, parse_sensor_spec, "--sensor-spec")
    _validate_spec(args.soft_error_spec, parse_soft_error_spec, "--soft-error-spec")
    config = _config_from_args(args)
    tracer = _make_tracer(args)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    if args.checkpoint is not None:
        if args.design not in DESIGN_ORDER:
            raise SystemExit(
                f"unknown design {args.design!r}; pick one of {', '.join(DESIGN_ORDER)}"
            )
        run = ResumableRun(
            config, args.design, args.benchmark,
            seed=args.seed, trace_cycles=args.trace_cycles,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
        )
        sim = run.sim
        if tracer is not None:
            sim.attach_tracer(tracer)
        print(
            f"running {args.design} on {args.benchmark}, snapshotting to "
            f"{args.checkpoint} every {args.checkpoint_every} cycles ...",
            file=sys.stderr,
        )
        if profiler is not None:
            profiler.enable()
        result = run.run()
        if profiler is not None:
            profiler.disable()
            _print_profile(profiler, run.sim.network)
    else:
        policy = make_policy(args.design, args.seed)
        sim = Simulator(config, policy, seed=args.seed, tracer=tracer)
        if profiler is not None:
            profiler.enable()
        if policy.trainable:
            print(f"pre-training {args.design} ...", file=sys.stderr)
            sim.pretrain()
        policy.freeze()
        sim.warmup()
        trace = synthesize_benchmark_trace(
            args.benchmark, config, args.trace_cycles, args.seed
        )
        result = sim.measure_trace(trace, args.benchmark)
        if profiler is not None:
            profiler.disable()
            _print_profile(profiler, sim.network)
    _export_observability(args, tracer, sim.metrics)
    _print_result(result, args.json)
    return 0


def cmd_resume(args) -> int:
    try:
        meta = read_checkpoint_meta(args.snapshot)
        run = ResumableRun.resume(
            args.snapshot, checkpoint_every=args.checkpoint_every
        )
    except CheckpointError as exc:
        raise SystemExit(str(exc)) from None
    print(
        f"resuming {meta['design']} on {meta['benchmark']} from cycle "
        f"{meta['cycle']} ({meta['phase']}) ...",
        file=sys.stderr,
    )
    result = run.run()
    # The tracer (if the interrupted run had one) travelled inside the
    # snapshot; --trace here only names where to write it afterwards.
    if args.trace and run.sim.tracer is None:
        print(
            "[trace] snapshot carries no tracer (original run was not "
            "traced); nothing to export",
            file=sys.stderr,
        )
    _export_observability(args, run.sim.tracer, run.sim.metrics)
    _print_result(result, args.json)
    return 0


def cmd_compare(args) -> int:
    _check_benchmark(args.benchmark)
    config = _config_from_args(args)
    spec = SweepSpec(
        config=config,
        kind="trace",
        designs=DESIGN_ORDER,
        traffics=(args.benchmark,),
        seeds=(args.seed,),
        cycles=args.trace_cycles,
    )
    print(f"running 4 designs on {args.benchmark} ...", file=sys.stderr)
    runner = _make_runner(spec, args)
    grid = merge_trace_grid(runner.run())
    _print_quarantine(runner)
    cell = grid.get((args.benchmark, spec.error_scales[0], args.seed), {})
    missing = [design for design in DESIGN_ORDER if design not in cell]
    if missing:
        raise SystemExit(
            f"cannot compare: no result for design(s) {', '.join(missing)}"
        )
    results = {design: cell[design] for design in DESIGN_ORDER}
    if args.json:
        print(json.dumps({d: r.as_dict() for d, r in results.items()}, indent=2))
        return 0
    metrics = [
        ("latency", lambda r: r.mean_latency),
        ("retransmissions", lambda r: r.retransmission_events + 1),
        ("energy efficiency", lambda r: r.energy_efficiency),
        ("dynamic power", lambda r: r.dynamic_power_watts),
        ("execution time", lambda r: r.execution_cycles),
    ]
    print(f"{'metric (vs CRC)':20s}" + "".join(f"{d:>10s}" for d in DESIGN_ORDER))
    for name, metric in metrics:
        normalized = normalize_to_baseline(results, metric)
        print(f"{name:20s}" + "".join(f"{normalized[d]:>10.2f}" for d in DESIGN_ORDER))
    return 0


def cmd_sweep(args) -> int:
    config = _config_from_args(args)
    rates = [float(r) for r in args.rates.split(",") if r]
    if not rates:
        raise SystemExit("no injection rates given")
    spec = SweepSpec(
        config=config,
        kind="load",
        designs=(args.design,),
        traffics=(args.pattern,),
        rates=tuple(rates),
        seeds=(args.seed,),
        cycles=args.span,
    )
    runner = _make_runner(spec, args)
    rows = []
    for point, p in zip(spec.expand(), runner.run()):
        if p is None:  # quarantined: keep the row, mark it unusable
            rows.append((point.rate, None, None, None))
        else:
            rows.append((
                p.load["rate"], p.load["latency"],
                p.load["throughput"], p.load["saturated"],
            ))
    print(
        f"[sweep] {runner.executed} point(s) simulated, "
        f"{runner.report.from_cache} from cache",
        file=sys.stderr,
    )
    _print_quarantine(runner)
    if args.json:
        print(json.dumps([
            {"rate": r, "latency": lat, "throughput": thr, "saturated": sat,
             "quarantined": lat is None and thr is None}
            for r, lat, thr, sat in rows
        ], indent=2))
        return 0 if runner.report.succeeded else 1
    print(f"{'rate':>8s} {'latency':>10s} {'throughput':>11s}")
    for rate, latency, throughput, saturated in rows:
        if latency is None:
            print(f"{rate:>8.3f} {'-':>10s} {'-':>11s}  (quarantined)")
            continue
        marker = "  (saturated)" if saturated else ""
        print(f"{rate:>8.3f} {latency:>10.1f} {throughput:>11.3f}{marker}")
    return 0 if runner.report.succeeded else 1


def cmd_campaign(args) -> int:
    if args.benchmarks:
        benchmarks = tuple(b.strip() for b in args.benchmarks.split(",") if b.strip())
    else:
        benchmarks = tuple(sorted(PARSEC_PROFILES))
    for benchmark in benchmarks:
        _check_benchmark(benchmark)
    designs = tuple(d.strip() for d in args.designs.split(",") if d.strip())
    config = _config_from_args(args)
    try:
        spec = CampaignSpec(
            config=config,
            benchmarks=benchmarks,
            designs=designs,
            seed=args.seed,
            trace_cycles=args.trace_cycles,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    tracer = _make_tracer(args)
    registry = MetricRegistry() if args.metrics else None
    print(
        f"campaign: {len(benchmarks)} benchmark(s) x {len(designs)} design(s), "
        f"seed {args.seed} ...",
        file=sys.stderr,
    )
    result = run_campaign(
        spec,
        jobs=args.jobs,
        artifact_dir=args.artifact_dir,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        refresh_artifacts=args.refresh_artifacts,
        progress=stderr_progress,
        point_timeout=args.point_timeout,
        max_retries=args.retries,
        registry=registry,
        tracer=tracer,
    )
    counters = result.counters()
    print(
        f"[campaign] {int(counters['artifacts_built'])} artifact(s) built, "
        f"{int(counters['artifacts_reused'])} reused; "
        f"{int(counters['cells_executed'])} cell(s) simulated, "
        f"{int(counters['cells_cached'])} from cache",
        file=sys.stderr,
    )
    if result.report.quarantined:
        print(
            f"[campaign] {len(result.report.quarantined)} cell(s) quarantined: "
            + ", ".join(result.report.quarantined),
            file=sys.stderr,
        )
    report = campaign_report(result.suite, designs=list(designs))
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[campaign] report JSON -> {args.report_json}", file=sys.stderr)
    if args.report_md:
        with open(args.report_md, "w", encoding="utf-8") as fh:
            fh.write(render_report_markdown(report))
        print(f"[campaign] report Markdown -> {args.report_md}", file=sys.stderr)
    _export_observability(args, tracer, registry)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report_markdown(report))
    return 0 if result.succeeded else 1


def cmd_chaos(args) -> int:
    if args.sensor_spec:
        return _cmd_sensor_chaos(args)
    if args.soft_error_spec:
        return _cmd_soft_error_chaos(args)
    config = _config_from_args(args)
    routings = tuple(r.strip() for r in args.routings.split(",") if r.strip())
    if not routings:
        raise SystemExit("no routing policies given")
    for routing in routings:
        if routing not in ROUTING_FUNCTIONS:
            raise SystemExit(
                f"unknown routing {routing!r}; pick one of "
                f"{', '.join(sorted(ROUTING_FUNCTIONS))}"
            )
    raw_specs = "link@500:5E" if args.fault_specs is None else args.fault_specs
    fault_specs = tuple(s.strip() for s in raw_specs.split("|"))
    for fault_spec in fault_specs:
        _validate_spec(fault_spec, parse_fault_spec, "--fault-specs")
    spec = SweepSpec(
        config=config,
        kind="chaos",
        designs=routings,
        traffics=("uniform",),
        seeds=(args.seed,),
        rates=(args.rate,),
        fault_specs=fault_specs,
        cycles=args.span,
    )
    tracer = _make_tracer(args)
    if tracer is not None:
        # A tracer cannot cross the worker-process boundary and events
        # are invisible to the result cache, so traced chaos runs are
        # single-point, in-process, and cache-bypassing.
        points = spec.expand()
        if len(points) != 1:
            raise SystemExit(
                "chaos --trace requires a single-point grid "
                "(one routing, one fault spec, one seed)"
            )
        payload = _eval_chaos(config, points[0], tracer=tracer)
        results = [_payload_to_result(points[0], payload, cached=False)]
        succeeded = True
        print(
            "[chaos] 1 point simulated in-process (traced; cache bypassed)",
            file=sys.stderr,
        )
        _export_observability(args, tracer, None)
    else:
        runner = _make_runner(spec, args)
        results = runner.run()
        print(
            f"[chaos] {runner.executed} point(s) simulated, "
            f"{runner.report.from_cache} from cache",
            file=sys.stderr,
        )
        _print_quarantine(runner)
        succeeded = runner.report.succeeded
    if args.json:
        print(json.dumps(
            [None if p is None else p.chaos for p in results], indent=2
        ))
        return 0 if succeeded else 1
    print(
        f"{'routing':>9s} {'fault spec':>28s} {'delivered':>10s} {'dropped':>8s} "
        f"{'reroutes':>9s} {'post-lat':>9s}  status"
    )
    worst = 0 if succeeded else 1
    for point, p in zip(spec.expand(), results):
        if p is None:
            spec_text = point.fault_spec or "(healthy)"
            print(
                f"{point.design:>9s} {spec_text:>28s} {'-':>10s} {'-':>8s} "
                f"{'-':>9s} {'-':>9s}  quarantined"
            )
            continue
        c = p.chaos
        diagnosis = c.get("diagnosis")
        status = diagnosis["error"] if diagnosis else "ok"
        if diagnosis:
            worst = 1
        spec_text = c["fault_spec"] or "(healthy)"
        print(
            f"{c['routing']:>9s} {spec_text:>28s} {c['delivered_fraction']:>10.3f} "
            f"{c['messages_dropped']:>8d} {c['reroutes']:>9d} "
            f"{c['post_fault_latency']:>9.1f}  {status}"
        )
    return worst


def _cmd_sensor_chaos(args) -> int:
    """``chaos --sensor-spec``: closed-loop control designs driven
    through the full Simulator while their telemetry is corrupted."""
    _validate_spec(args.sensor_spec, parse_sensor_spec, "--sensor-spec")
    config = _config_from_args(args)
    designs = tuple(d.strip() for d in args.designs.split(",") if d.strip())
    if not designs:
        raise SystemExit("no control designs given")
    for design in designs:
        if design not in DESIGN_ORDER:
            raise SystemExit(
                f"unknown design {design!r}; pick one of {', '.join(DESIGN_ORDER)}"
            )
    # A sensor campaign defaults to a hard-fault-free platform so the
    # telemetry corruption is the only stressor under test.
    raw_specs = "" if args.fault_specs is None else args.fault_specs
    fault_specs = tuple(s.strip() for s in raw_specs.split("|"))
    for fault_spec in fault_specs:
        _validate_spec(fault_spec, parse_fault_spec, "--fault-specs")
    spec = SweepSpec(
        config=config,
        kind="sensor_chaos",
        designs=designs,
        traffics=("uniform",),
        seeds=(args.seed,),
        rates=(args.rate,),
        fault_specs=fault_specs,
        sensor_specs=(args.sensor_spec,),
        cycles=args.span,
    )
    tracer = _make_tracer(args)
    if tracer is not None:
        points = spec.expand()
        if len(points) != 1:
            raise SystemExit(
                "chaos --trace requires a single-point grid "
                "(one design, one fault spec, one seed)"
            )
        payload = _eval_sensor_chaos(config, points[0], tracer=tracer)
        results = [_payload_to_result(points[0], payload, cached=False)]
        succeeded = True
        print(
            "[chaos] 1 sensor point simulated in-process (traced; cache bypassed)",
            file=sys.stderr,
        )
        _export_observability(args, tracer, None)
    else:
        runner = _make_runner(spec, args)
        results = runner.run()
        print(
            f"[chaos] {runner.executed} sensor point(s) simulated, "
            f"{runner.report.from_cache} from cache",
            file=sys.stderr,
        )
        _print_quarantine(runner)
        succeeded = runner.report.succeeded
    if args.json:
        print(json.dumps(
            [None if p is None else p.sensor for p in results], indent=2
        ))
        return 0 if succeeded else 1
    print(
        f"{'design':>7s} {'sensor spec':>36s} {'delivered':>10s} {'rejected':>9s} "
        f"{'holds':>6s} {'quar':>5s} {'switches':>9s}  status"
    )
    worst = 0 if succeeded else 1
    for point, p in zip(spec.expand(), results):
        if p is None:
            print(
                f"{point.design:>7s} {point.sensor_spec:>36s} {'-':>10s} "
                f"{'-':>9s} {'-':>6s} {'-':>5s} {'-':>9s}  quarantined"
            )
            continue
        s = p.sensor
        diagnosis = s.get("diagnosis")
        status = diagnosis["error"] if diagnosis else "ok"
        if diagnosis:
            worst = 1
        print(
            f"{s['design']:>7s} {s['sensor_spec']:>36s} "
            f"{s['delivered_fraction']:>10.3f} "
            f"{s['rejected_observations']:>9d} {s['sensor_holds']:>6d} "
            f"{len(s['quarantined_routers']):>5d} {s['mode_switches']:>9d}  {status}"
        )
    return worst


def _cmd_soft_error_chaos(args) -> int:
    """``chaos --soft-error-spec``: closed-loop control designs driven
    through the full Simulator while SEUs flip bits in their Q-table
    SRAM and mode registers."""
    _validate_spec(args.soft_error_spec, parse_soft_error_spec, "--soft-error-spec")
    config = _config_from_args(args)
    designs = tuple(d.strip() for d in args.designs.split(",") if d.strip())
    if not designs:
        raise SystemExit("no control designs given")
    for design in designs:
        if design not in DESIGN_ORDER:
            raise SystemExit(
                f"unknown design {design!r}; pick one of {', '.join(DESIGN_ORDER)}"
            )
    # An SEU campaign defaults to a hard-fault-free platform so the
    # memory upsets are the only stressor under test.
    raw_specs = "" if args.fault_specs is None else args.fault_specs
    fault_specs = tuple(s.strip() for s in raw_specs.split("|"))
    for fault_spec in fault_specs:
        _validate_spec(fault_spec, parse_fault_spec, "--fault-specs")
    spec = SweepSpec(
        config=config,
        kind="soft_error",
        designs=designs,
        traffics=("uniform",),
        seeds=(args.seed,),
        rates=(args.rate,),
        fault_specs=fault_specs,
        soft_error_specs=(args.soft_error_spec,),
        cycles=args.span,
    )
    tracer = _make_tracer(args)
    if tracer is not None:
        points = spec.expand()
        if len(points) != 1:
            raise SystemExit(
                "chaos --trace requires a single-point grid "
                "(one design, one fault spec, one seed)"
            )
        payload = _eval_soft_error(config, points[0], tracer=tracer)
        results = [_payload_to_result(points[0], payload, cached=False)]
        succeeded = True
        print(
            "[chaos] 1 soft-error point simulated in-process (traced; "
            "cache bypassed)",
            file=sys.stderr,
        )
        _export_observability(args, tracer, None)
    else:
        runner = _make_runner(spec, args)
        results = runner.run()
        print(
            f"[chaos] {runner.executed} soft-error point(s) simulated, "
            f"{runner.report.from_cache} from cache",
            file=sys.stderr,
        )
        _print_quarantine(runner)
        succeeded = runner.report.succeeded
    if args.json:
        print(json.dumps(
            [None if p is None else p.soft_error for p in results], indent=2
        ))
        return 0 if succeeded else 1
    print(
        f"{'design':>7s} {'soft-error spec':>32s} {'ecc':>4s} {'delivered':>10s} "
        f"{'corr':>5s} {'det':>4s} {'quar':>5s} {'votes':>6s}  status"
    )
    worst = 0 if succeeded else 1
    for point, p in zip(spec.expand(), results):
        if p is None:
            print(
                f"{point.design:>7s} {point.soft_error_spec:>32s} {'-':>4s} "
                f"{'-':>10s} {'-':>5s} {'-':>4s} {'-':>5s} {'-':>6s}  quarantined"
            )
            continue
        s = p.soft_error
        diagnosis = s.get("diagnosis")
        status = diagnosis["error"] if diagnosis else "ok"
        if diagnosis:
            worst = 1
        print(
            f"{s['design']:>7s} {s['soft_error_spec']:>32s} "
            f"{'on' if s['ecc'] else 'off':>4s} "
            f"{s['delivered_fraction']:>10.3f} "
            f"{s['corrected']:>5d} {s['detected']:>4d} "
            f"{s['quarantined_rows']:>5d} {s['mode_votes']:>6d}  {status}"
        )
    return worst


def _load_trajectory(path: str) -> dict:
    """Read a BENCH_kernel.json trajectory file ({version, entries})."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return {"version": 1, "entries": []}
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read {path}: {exc}") from None
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise SystemExit(f"{path} is not a bench trajectory file")
    return data


def _latest_baseline(trajectory: dict) -> Optional[dict]:
    """Most recent entry carrying speedup ratios (regression baseline)."""
    for entry in reversed(trajectory["entries"]):
        if entry.get("speedups"):
            return entry
    return None


def cmd_bench(args) -> int:
    names = None
    if args.scenarios:
        names = [s.strip() for s in args.scenarios.split(",") if s.strip()]
        unknown = [n for n in names if n not in BENCH_SCENARIOS]
        if unknown:
            raise SystemExit(
                f"unknown scenario(s) {', '.join(unknown)}; pick from "
                + ", ".join(BENCH_SCENARIOS)
            )
    print(
        f"benchmarking kernels ({'quick' if args.quick else 'full'} scale, "
        f"{args.width}x{args.height} mesh, seed {args.seed}) ...",
        file=sys.stderr,
    )
    try:
        payload = run_bench(
            quick=args.quick, seed=args.seed,
            width=args.width, height=args.height, scenarios=names,
        )
    except RuntimeError as exc:
        raise SystemExit(str(exc)) from None

    status = 0
    failures: list = []
    if args.check is not None:
        trajectory = _load_trajectory(args.check)
        baseline = _latest_baseline(trajectory)
        if baseline is None:
            print(
                f"[bench] no baseline with speedups in {args.check}; "
                "nothing to check against",
                file=sys.stderr,
            )
        else:
            failures = check_regression(payload, baseline, args.threshold)
            for failure in failures:
                print(f"[bench] REGRESSION {failure}", file=sys.stderr)
            if not failures:
                print(
                    f"[bench] speedups within {args.threshold:.0%} of baseline "
                    f"{baseline.get('label', '(unlabelled)')}",
                    file=sys.stderr,
                )
        digest_failures = check_digests(payload, trajectory)
        for failure in digest_failures:
            print(f"[bench] DIGEST DRIFT {failure}", file=sys.stderr)
        if not digest_failures:
            print(
                "[bench] stats digests match every baseline entry at this "
                "measurement point",
                file=sys.stderr,
            )
        failures = failures + digest_failures
        if failures:
            status = 1

    if args.output is not None:
        trajectory = _load_trajectory(args.output)
        entry = dict(payload)
        if args.label:
            entry["label"] = args.label
        trajectory["entries"].append(entry)
        with open(args.output, "w") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")
        print(
            f"[bench] appended entry #{len(trajectory['entries'])} to {args.output}",
            file=sys.stderr,
        )

    if args.json:
        print(json.dumps({"result": payload, "regressions": failures}, indent=2))
    else:
        print(format_report(payload))
    return status


def cmd_trace(args) -> int:
    try:
        events = read_trace_jsonl(args.file)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.file}") from None
    except ValueError as exc:
        raise SystemExit(f"{args.file} is not a JSONL trace: {exc}") from None
    if args.categories:
        try:
            wanted = parse_categories(args.categories)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        events = [ev for ev in events if ev.category in wanted]
    if args.digest:
        print(trace_digest(events))
        return 0
    if args.json:
        print(json.dumps([ev.as_dict() for ev in events], indent=2))
        return 0
    by_kind: dict = {}
    for ev in events:
        key = f"{ev.category}/{ev.kind}"
        by_kind[key] = by_kind.get(key, 0) + 1
    span = f"cycles {events[0].cycle}..{events[-1].cycle}" if events else "empty"
    print(f"{len(events)} event(s), {span}")
    for key in sorted(by_kind):
        print(f"  {key:28s} {by_kind[key]}")
    safe_entries = (
        by_kind.get("watchdog/safe_mode", 0) + by_kind.get("sensor/quarantine", 0)
    )
    rejects = by_kind.get("sensor/reject", 0)
    debounced = by_kind.get("sensor/debounce", 0)
    if safe_entries or rejects or debounced:
        print(
            f"degradation: {safe_entries} safe-mode entr"
            f"{'y' if safe_entries == 1 else 'ies'}, "
            f"{rejects} rejected observation(s), "
            f"{debounced} debounced switch(es)"
        )
    print(f"digest {trace_digest(events)}")
    if args.tail > 0:
        print()
        for ev in events[-args.tail:]:
            subject = "-" if ev.subject is None else ev.subject
            data = " ".join(f"{k}={v}" for k, v in sorted(ev.data.items()))
            print(f"  @{ev.cycle:<8d} {ev.category}/{ev.kind:<20s} [{subject}] {data}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "resume": cmd_resume,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "chaos": cmd_chaos,
        "bench": cmd_bench,
        "trace": cmd_trace,
        "campaign": cmd_campaign,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # pragma: no cover - e.g. `repro trace f | head`
        # Point stdout at devnull so the interpreter's shutdown flush
        # does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
