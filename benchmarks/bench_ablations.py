"""Ablation benches for the design choices DESIGN.md §6 calls out.

Each ablation evaluates RL-policy variants on one hot benchmark
(canneal-like traffic, where mode choice matters most) at a reduced
scale, and reports the measured deltas.  These are exploratory benches:
they assert only sanity (everything delivers, metrics finite), and print
the comparison for EXPERIMENTS.md.
"""

import os
import random

import pytest

from repro.core.controller import ControlPolicy, compute_reward
from repro.core.modes import OperationMode
from repro.core.rl_policy import RLControlPolicy
from repro.sim import Simulator, scaled_config, synthesize_benchmark_trace


def ablation_config(**overrides):
    params = dict(
        width=4,
        height=4,
        epoch_cycles=250,
        pretrain_cycles=int(os.environ.get("REPRO_ABLATION_PRETRAIN", "30000")),
        warmup_cycles=1500,
    )
    params.update(overrides)
    return scaled_config(**params)


def run_rl_variant(policy, config, seed=21, trace_cycles=2000):
    records = synthesize_benchmark_trace("canneal", config, trace_cycles, seed)
    sim = Simulator(config, policy, seed=seed)
    sim.pretrain()
    policy.freeze()
    sim.warmup()
    return sim.measure_trace(records, "canneal")


def summarize(label, result):
    print(
        f"  {label:28s} lat={result.mean_latency:7.1f} "
        f"retx={result.retransmission_events:5d} "
        f"eff={result.energy_efficiency:8.1f} "
        f"dynP={result.dynamic_power_watts*1e3:6.1f}mW"
    )
    assert result.packets_delivered > 0
    assert result.mean_latency > 0


class _ShapedRewardRL(RLControlPolicy):
    """RL variant applying a monotone re-shaping to the paper reward.

    ``r**0.5`` compresses the reward range, de-emphasizing the power
    term's large relative swings (a latency-leaning learner); ``r**2``
    amplifies them (power-leaning).  Both preserve per-state ordering of
    identical (latency, power) pairs, isolating the effect of reward
    *scale* on tabular learning.
    """

    def __init__(self, exponent, **kwargs):
        super().__init__(**kwargs)
        self.exponent = exponent

    def learn(self, router_id, obs, action, reward, next_obs):
        super().learn(router_id, obs, action, reward ** self.exponent, next_obs)


def test_ablation_reward_shape():
    """Paper reward 1/(lat x power) vs compressed / amplified variants."""
    print("\n=== Ablation: reward shape (canneal) ===")
    config = ablation_config()
    for label, factory in [
        ("paper 1/(lat*power)", lambda: RLControlPolicy(share_table=True, seed=21)),
        ("latency-leaning r^0.5", lambda: _ShapedRewardRL(0.5, share_table=True, seed=21)),
        ("power-leaning r^2", lambda: _ShapedRewardRL(2.0, share_table=True, seed=21)),
    ]:
        summarize(label, run_rl_variant(factory(), config))


def test_ablation_epoch_length():
    """Control epoch length: 125 / 250 / 500 cycles (paper: 1K)."""
    print("\n=== Ablation: control epoch length (canneal) ===")
    for epoch in (125, 250, 500):
        config = ablation_config(epoch_cycles=epoch)
        policy = RLControlPolicy(share_table=True, seed=21)
        result = run_rl_variant(policy, config)
        summarize(f"epoch={epoch} cycles", result)


def test_ablation_exploration_rate():
    """Testing-phase epsilon: 0.0 / 0.02 / 0.1 (paper: 0.1)."""
    print("\n=== Ablation: testing-phase epsilon (canneal) ===")
    config = ablation_config()
    for epsilon in (0.0, 0.02, 0.1):
        policy = RLControlPolicy(epsilon=epsilon, share_table=True, seed=21)
        result = run_rl_variant(policy, config)
        summarize(f"epsilon={epsilon}", result)


def test_ablation_state_features():
    """Full Table I state vs compact aggregate vs mode-less state."""
    print("\n=== Ablation: state encoding (canneal) ===")
    variants = [
        ("compact + mode (default)", dict(compact_state=True, include_mode_in_state=True)),
        ("compact, no mode", dict(compact_state=True, include_mode_in_state=False)),
        ("full Table I + mode", dict(compact_state=False, include_mode_in_state=True)),
    ]
    for label, overrides in variants:
        config = ablation_config(**overrides)
        policy = RLControlPolicy(share_table=True, seed=21)
        result = run_rl_variant(policy, config)
        summarize(label, result)


def test_ablation_shared_vs_per_router_table():
    """The paper's strictly per-router agents vs the shared-table
    accelerator used by scaled runs."""
    print("\n=== Ablation: Q-table sharing (canneal) ===")
    config = ablation_config()
    for label, share in [("shared table", True), ("per-router tables", False)]:
        policy = RLControlPolicy(share_table=share, seed=21)
        result = run_rl_variant(policy, config)
        summarize(label, result)
