"""Cycle-kernel throughput: activity-driven (fast) vs full-scan (naive).

Runs the three workload shapes of :mod:`repro.sim.bench` on both cycle
kernels, asserts the bit-identity contract (both kernels must produce
the same stats digest from the same seed), and prints the measured
cycles/second table together with the committed trajectory
(``BENCH_kernel.json`` at the repo root) for before/after context.

The asserted floors are deliberately loose — absolute cycles/second are
machine-dependent and the fast/naive *ratio* at saturation hovers near
1x (at full load there is nothing to skip).  The strong, stable claims
are (a) digest equality and (b) the idle-scenario ratio, which is driven
by the fast-forward path and sits orders of magnitude above 1.

Scaling knobs: ``REPRO_BENCH_KERNEL_QUICK=1`` switches to the reduced
CI cycle counts; ``REPRO_BENCH_KERNEL_SCENARIOS`` selects a comma
separated subset.
"""

import json
import os
from pathlib import Path

from repro.sim.bench import SCENARIOS, format_report, run_bench

from conftest import print_figure

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _scenarios():
    raw = os.environ.get("REPRO_BENCH_KERNEL_SCENARIOS")
    if not raw:
        return None
    names = [n.strip() for n in raw.split(",") if n.strip()]
    unknown = set(names) - set(SCENARIOS)
    if unknown:
        raise ValueError(f"unknown scenarios: {sorted(unknown)}")
    return names


def bench_kernel_throughput():
    quick = os.environ.get("REPRO_BENCH_KERNEL_QUICK") == "1"
    payload = run_bench(quick=quick, seed=0, scenarios=_scenarios())

    # run_bench raises on digest divergence; reaching here means every
    # scenario was bit-identical across kernels.
    rows = []
    for name, row in payload["scenarios"].items():
        rows.append(
            (
                name,
                row["fast"]["cycles_per_second"],
                row["naive"]["cycles_per_second"],
                row["speedup"],
            )
        )
    print_figure(
        "Kernel throughput (cycles/second)",
        ("scenario", "fast", "naive", "ratio"),
        rows,
    )

    if "idle" in payload["scenarios"]:
        # Fast-forward makes idle-heavy spans essentially free; even on a
        # loaded machine the ratio stays far above this floor.
        assert payload["speedups"]["idle"] > 3.0, payload["speedups"]

    if TRAJECTORY.exists():
        with TRAJECTORY.open() as handle:
            trajectory = json.load(handle)
        print("\ncommitted trajectory (BENCH_kernel.json):")
        for entry in trajectory.get("entries", []):
            label = entry.get("label", "(unlabelled)")
            if "cycles_per_second" in entry:  # seed-era absolute numbers
                rates = ", ".join(
                    f"{k} {v:,.0f} c/s"
                    for k, v in entry["cycles_per_second"].items()
                )
            else:
                rates = ", ".join(
                    f"{k} {row['fast']['cycles_per_second']:,.0f} c/s"
                    for k, row in entry.get("scenarios", {}).items()
                )
            print(f"  - {label}: {rates}")


def test_kernel_bench():
    bench_kernel_throughput()


if __name__ == "__main__":
    bench_kernel_throughput()
    print()
    print(format_report(run_bench(quick=True, seed=0)))
