"""Fig. 8 — average end-to-end packet latency, normalized to CRC.

Paper (Section VI-A): ARQ+ECC reduces average E2E latency by 30 % over
CRC (normalized ~ 0.70); the proposed RL design by 55 % (~ 0.45), which
is also 10 % below the DT baseline (~ 0.50).
"""

from conftest import print_figure

from repro.sim import DESIGN_ORDER, geometric_mean, normalize_to_baseline

PAPER_AVERAGES = {"crc": 1.00, "arq_ecc": 0.70, "dt": 0.50, "rl": 0.45}


def figure_rows(suite):
    averages = {}
    rows = []
    for design in DESIGN_ORDER:
        values = [
            normalize_to_baseline(results, lambda r: r.mean_latency)[design]
            for results in suite.values()
        ]
        averages[design] = geometric_mean(values)
        rows.append([design, PAPER_AVERAGES[design], averages[design]])
    return rows, averages


def test_fig8_latency(suite_results, benchmark):
    rows, averages = benchmark.pedantic(
        figure_rows, args=(suite_results,), rounds=1, iterations=1
    )
    print_figure(
        "Fig. 8: average end-to-end latency (normalized to CRC)",
        ["design", "paper", "measured"],
        rows,
    )
    # The CRC baseline is the slowest design under faults.
    for design in ("arq_ecc", "dt", "rl"):
        assert averages[design] < 1.0
    # And the reduction is substantial (paper: 55 % for RL; require >= 30 %).
    assert averages["rl"] < 0.70


def test_fig8_per_benchmark_series(suite_results):
    print("\nFig. 8 per-benchmark series (normalized to CRC):")
    for bench, results in sorted(suite_results.items()):
        normalized = normalize_to_baseline(results, lambda r: r.mean_latency)
        series = "  ".join(f"{d}={normalized[d]:.2f}" for d in DESIGN_ORDER)
        print(f"  {bench:14s} {series}")
        # No benchmark may invert the headline: RL never slower than CRC.
        assert normalized["rl"] < 1.20
