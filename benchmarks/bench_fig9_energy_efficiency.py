"""Fig. 9 — energy efficiency (flits/energy), normalized to CRC.

Paper (Section VI-A): the proposed framework improves energy efficiency
by an average of 64 % over the CRC baseline (normalized ~ 1.64) and by
15 % over the DT baseline.
"""

from conftest import print_figure

from repro.sim import DESIGN_ORDER, geometric_mean, normalize_to_baseline

PAPER_AVERAGES = {"crc": 1.00, "arq_ecc": 1.35, "dt": 1.43, "rl": 1.64}


def figure_rows(suite):
    averages = {}
    rows = []
    for design in DESIGN_ORDER:
        values = [
            normalize_to_baseline(results, lambda r: r.energy_efficiency)[design]
            for results in suite.values()
        ]
        averages[design] = geometric_mean(values)
        rows.append([design, PAPER_AVERAGES[design], averages[design]])
    return rows, averages


def test_fig9_energy_efficiency(suite_results, benchmark):
    rows, averages = benchmark.pedantic(
        figure_rows, args=(suite_results,), rounds=1, iterations=1
    )
    print_figure(
        "Fig. 9: energy efficiency (normalized to CRC)",
        ["design", "paper", "measured"],
        rows,
    )
    # Under faults, avoiding retransmission energy beats the CRC design.
    assert averages["rl"] > 1.10
    assert averages["arq_ecc"] > 1.0
    # The proposed design is at least on par with the DT baseline
    # (paper: 15 % better).
    assert averages["rl"] > 0.95 * averages["dt"]


def test_fig9_hot_benchmarks_show_biggest_gain(suite_results):
    """Energy efficiency gains should be largest where faults cost most
    (hot, high-traffic benchmarks)."""
    gains = {
        bench: normalize_to_baseline(results, lambda r: r.energy_efficiency)["rl"]
        for bench, results in suite_results.items()
    }
    temps = {
        bench: results["crc"].mean_temperature
        for bench, results in suite_results.items()
    }
    print("\nFig. 9 RL gain vs CRC by benchmark temperature:")
    for bench in sorted(gains, key=temps.get):
        print(f"  {bench:14s} T={temps[bench]:5.1f}C  gain={gains[bench]:.2f}")
    hottest = max(temps, key=temps.get)
    coolest = min(temps, key=temps.get)
    assert gains[hottest] >= gains[coolest]
