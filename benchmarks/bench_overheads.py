"""Section VI-B — computation, area, and energy overheads of the RL logic.

Paper anchors:

* computation: one RL step (table lookup + Q update) costs 150 ns worst
  case, hidden inside the 1K-cycle (500 ns at 2 GHz ... actually 1K
  cycles = 500 ns; the paper's point is that the step overlaps the epoch);
* area: the RL logic adds 2360 um^2 — 5.5 % / 4.8 % / 4.5 % over the
  CRC / ARQ+ECC / DT routers;
* energy: 0.16 pJ per flit on a ~13.33 pJ baseline = 1.2 %.
"""

import random

import pytest

from repro.core.qlearning import QLearningAgent
from repro.power import RouterAreaModel, RouterPowerModel


class TestComputationOverhead:
    def test_rl_step_cost(self, benchmark):
        """Time one Q-learning step (lookup + TD update).

        The hardware budget is 150 ns; a Python dict update is obviously
        slower, so the bench asserts the *architectural* property instead:
        one step per router per epoch is a tiny constant amount of work,
        independent of network size or traffic.
        """
        agent = QLearningAgent(4, rng=random.Random(0))
        states = [(b, u, n, t) for b in range(3) for u in range(3) for n in range(3) for t in range(3)]
        for s in states:
            agent.update(s, 0, 1.0, s)
        idx = {"i": 0}

        def one_step():
            s = states[idx["i"] % len(states)]
            idx["i"] += 1
            action = agent.select_action(s)
            agent.update(s, action, 1.0, states[(idx["i"] + 1) % len(states)])

        benchmark(one_step)
        # Work per step never grows with the table: 4 Q-values touched.
        assert agent.num_actions == 4

    def test_step_hidden_by_epoch(self):
        """150 ns at 2 GHz = 300 cycles < the 1000-cycle epoch."""
        step_cycles = 150e-9 * 2.0e9
        assert step_cycles < 1000


class TestAreaOverhead:
    def test_paper_numbers(self, benchmark):
        model = RouterAreaModel()
        summary = benchmark.pedantic(model.summary, rounds=1, iterations=1)
        print("\n=== Section VI-B: area overhead ===")
        print(f"  RL logic added area: {summary['rl_added_um2']:.0f} um^2 (paper: 2360)")
        print(f"  vs CRC router:      {summary['overhead_vs_crc']*100:.1f} % (paper: 5.5 %)")
        print(f"  vs ARQ+ECC router:  {summary['overhead_vs_arq_ecc']*100:.1f} % (paper: 4.8 %)")
        print(f"  vs DT router:       {summary['overhead_vs_dt']*100:.1f} % (paper: 4.5 %)")
        assert summary["rl_added_um2"] == 2360.0
        assert summary["overhead_vs_crc"] == pytest.approx(0.055, abs=0.001)
        assert summary["overhead_vs_arq_ecc"] == pytest.approx(0.048, abs=0.001)
        assert summary["overhead_vs_dt"] == pytest.approx(0.045, abs=0.001)


class TestEnergyOverhead:
    def test_paper_numbers(self, benchmark):
        model = RouterPowerModel()
        fraction = benchmark.pedantic(model.rl_overhead_fraction, rounds=1, iterations=1)
        baseline = model.baseline_flit_energy_pj()
        print("\n=== Section VI-B: energy overhead ===")
        print(f"  baseline router energy: {baseline:.2f} pJ/flit (paper: ~13.33)")
        print(f"  RL logic energy:        {model.params.rl_per_flit_pj:.2f} pJ/flit (paper: 0.16)")
        print(f"  overhead:               {fraction*100:.2f} % (paper: 1.2 %)")
        assert model.params.rl_per_flit_pj == pytest.approx(0.16)
        assert baseline == pytest.approx(13.33, abs=0.1)
        assert fraction == pytest.approx(0.012, abs=0.001)
