"""Table II — simulation parameters.

Not a results table: this bench verifies and prints that the platform
the harness builds matches Table II, and times platform construction
(a real cost when sweeping many configurations).
"""

from repro.baselines import crc_policy
from repro.sim import Simulator, paper_config


def build_platform():
    config = paper_config()
    return Simulator(config, crc_policy(), seed=0)


def test_table2_platform(benchmark):
    sim = benchmark.pedantic(build_platform, rounds=1, iterations=1)
    config = sim.config
    print("\n=== Table II: simulation parameters ===")
    rows = [
        ("# of cores", 64, config.num_nodes),
        ("NoC topology", "8x8 2D mesh", f"{config.width}x{config.height} 2D mesh"),
        ("Routing", "X-Y", config.routing.upper().replace("XY", "X-Y")),
        ("VCs per port", 4, config.num_vcs),
        ("Packet size", "128 bits/flit, 4 flits", f"{config.flit_bits} bits/flit, {config.packet_size} flits"),
        ("Voltage", "1.0 V", f"{config.voltage} V"),
        ("Frequency", "2.0 GHz", f"{config.clock_hz/1e9} GHz"),
        ("RL epoch", "1K cycles", f"{config.epoch_cycles} cycles"),
    ]
    for name, paper, ours in rows:
        print(f"  {name:18s} paper: {paper!s:24s} harness: {ours}")
    assert config.num_nodes == 64
    assert config.num_vcs == 4
    assert config.flit_bits == 128
    assert config.packet_size == 4
    assert config.clock_hz == 2.0e9
    assert config.voltage == 1.0
    assert config.epoch_cycles == 1000
    assert len(sim.network.routers) == 64
    assert len(sim.network.channels) == 2 * 7 * 8 * 2  # 224 directed links
    # Five-port routers: interior routers have all four direction links.
    interior = sim.network.routers[9 + 8]  # (1, 2) is interior on 8x8
    assert len(interior.outputs) == 4
