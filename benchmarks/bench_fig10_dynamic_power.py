"""Fig. 10 — dynamic power consumption, normalized to CRC.

Paper (Section VI-A): the proposed framework reduces dynamic power by an
average of 46 % over CRC (normalized ~ 0.54) thanks to the reduction in
retransmission traffic, and by 17 % over the DT baseline.
"""

from conftest import print_figure

from repro.sim import DESIGN_ORDER, geometric_mean, normalize_to_baseline

PAPER_AVERAGES = {"crc": 1.00, "arq_ecc": 0.75, "dt": 0.65, "rl": 0.54}


def figure_rows(suite):
    averages = {}
    rows = []
    for design in DESIGN_ORDER:
        values = [
            normalize_to_baseline(results, lambda r: r.dynamic_power_watts)[design]
            for results in suite.values()
        ]
        averages[design] = geometric_mean(values)
        rows.append([design, PAPER_AVERAGES[design], averages[design]])
    return rows, averages


def test_fig10_dynamic_power(suite_results, benchmark):
    rows, averages = benchmark.pedantic(
        figure_rows, args=(suite_results,), rounds=1, iterations=1
    )
    print_figure(
        "Fig. 10: dynamic power (normalized to CRC)",
        ["design", "paper", "measured"],
        rows,
    )
    # Retransmission traffic dominates dynamic power under faults: every
    # fault-tolerant design consumes less than the CRC baseline.
    for design in ("arq_ecc", "dt", "rl"):
        assert averages[design] < 1.0
    # Paper: 46 % reduction for RL.  Our adaptive designs burn part of
    # the saved retransmission energy on mode-2 duplicate flits, so the
    # measured reduction is smaller; require a clear reduction (>= 10 %).
    assert averages["rl"] < 0.90


def test_fig10_dynamic_power_tracks_retransmissions(suite_results):
    """Within each benchmark, the design with more retransmission events
    should not consume meaningfully less dynamic power — the mechanism
    behind Fig. 10 per the paper's analysis."""
    violations = 0
    comparisons = 0
    for bench, results in suite_results.items():
        crc = results["crc"]
        rl = results["rl"]
        comparisons += 1
        if (
            rl.retransmission_events < 0.7 * crc.retransmission_events
            and rl.dynamic_power_watts > 1.05 * crc.dynamic_power_watts
        ):
            violations += 1
    assert violations <= comparisons // 4
