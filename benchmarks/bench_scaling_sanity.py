"""Scaling sanity check (DESIGN.md §7).

The benches run with phases ~1/25 the paper's cycle counts.  This bench
verifies the *relative* results those benches report are stable under
scaling: the headline ordering (CRC worst on latency and efficiency under
a hot workload) must hold at two different trace lengths, and the
normalized ratios must agree within a loose factor.
"""

from repro.sim import compare_designs, scaled_config, synthesize_benchmark_trace


def run_at_scale(trace_cycles, pretrain):
    config = scaled_config(
        width=4,
        height=4,
        epoch_cycles=250,
        pretrain_cycles=pretrain,
        warmup_cycles=1_500,
    )
    records = synthesize_benchmark_trace("canneal", config, trace_cycles, seed=31)
    return compare_designs(records, config, "canneal", seed=31)


def test_ordering_stable_under_scaling(benchmark):
    small = benchmark.pedantic(
        run_at_scale, args=(1_500, 20_000), rounds=1, iterations=1
    )
    large = run_at_scale(3_000, 40_000)

    print("\n=== Scaling sanity: canneal, two scales ===")
    for label, results in (("1.5K trace", small), ("3K trace", large)):
        ratios = {
            d: results[d].mean_latency / results["crc"].mean_latency
            for d in ("arq_ecc", "dt", "rl")
        }
        print(f"  {label}: latency vs CRC " + "  ".join(f"{d}={v:.2f}" for d, v in ratios.items()))

    for results in (small, large):
        crc = results["crc"]
        # Ordering invariants at both scales.
        for design in ("arq_ecc", "dt", "rl"):
            assert results[design].mean_latency < crc.mean_latency
            assert results[design].energy_efficiency > crc.energy_efficiency

    # Ratio stability: the RL/CRC latency ratio is a stochastic quantity
    # on a short window, and the smaller scale also halves RL's
    # pre-training budget, so the *gap* narrows there.  The properties
    # the scaled benches rely on: the direction never flips (asserted
    # above), both scales show a substantial reduction, and the ratios
    # stay within the same order of magnitude.
    ratio_small = small["rl"].mean_latency / small["crc"].mean_latency
    ratio_large = large["rl"].mean_latency / large["crc"].mean_latency
    assert ratio_small < 0.9 and ratio_large < 0.9
    assert ratio_small / ratio_large < 5.0
    assert ratio_large / ratio_small < 5.0
