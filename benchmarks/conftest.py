"""Shared fixtures for the benchmark harness.

Every figure of the paper's evaluation (Figs 6-10) is computed from the
same experiment grid: the PARSEC-like suite run through all four designs.
The grid is expensive, so it is produced once and cached to
``benchmarks/results/suite.json`` (keyed by a fingerprint of the bench
configuration); per-figure bench modules consume it, assert the paper's
qualitative shape, and print the paper-vs-measured rows.

Scaling knobs (environment variables):

``REPRO_BENCH_WIDTH`` / ``REPRO_BENCH_HEIGHT``
    Mesh size (default 4x4; the paper's 8x8 works but multiplies runtime).
``REPRO_BENCH_TRACE_CYCLES``
    Injection span of each benchmark trace (default 2500).
``REPRO_BENCH_PRETRAIN``
    Synthetic pre-training cycles (default 80000).
``REPRO_BENCH_BENCHMARKS``
    Comma-separated subset of PARSEC benchmark names (default: all ten).
``REPRO_BENCH_REFRESH=1``
    Ignore the cache and recompute the grid.
``REPRO_BENCH_JOBS``
    Worker processes for the grid (default: one per design, capped by
    the CPU count).  Each design's row (pre-train once, snapshot, then
    every benchmark on a fresh clone of the frozen snapshot) is one
    sweep point, so parallelism across designs changes no results.
"""

import json
import os
from pathlib import Path

import pytest

from repro.sim import (
    DESIGN_ORDER,
    RunResult,
    SweepRunner,
    SweepSpec,
    merge_suite,
    scaled_config,
    stderr_progress,
)
from repro.traffic import PARSEC_PROFILES

RESULTS_DIR = Path(__file__).parent / "results"
SUITE_CACHE = RESULTS_DIR / "suite.json"
SWEEP_CACHE_DIR = RESULTS_DIR / "sweep_cache"


def bench_config():
    return scaled_config(
        width=int(os.environ.get("REPRO_BENCH_WIDTH", "4")),
        height=int(os.environ.get("REPRO_BENCH_HEIGHT", "4")),
        epoch_cycles=250,
        pretrain_cycles=int(os.environ.get("REPRO_BENCH_PRETRAIN", "80000")),
        warmup_cycles=2000,
    )


def bench_benchmarks():
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS")
    if raw:
        names = [n.strip() for n in raw.split(",") if n.strip()]
        unknown = set(names) - set(PARSEC_PROFILES)
        if unknown:
            raise ValueError(f"unknown benchmarks: {sorted(unknown)}")
        return names
    return sorted(PARSEC_PROFILES)


def _fingerprint(config, benchmarks, trace_cycles):
    return {
        # Bump when result-affecting code changes (v2: stable crc32 trace
        # seeding replaced per-interpreter hash(); v3: full-width crc32
        # trace seeds and per-benchmark policy clones from the frozen
        # pretrain snapshot instead of one live policy chained in order).
        "code_version": 3,
        "width": config.width,
        "height": config.height,
        "pretrain_cycles": config.pretrain_cycles,
        "trace_cycles": trace_cycles,
        "benchmarks": list(benchmarks),
    }


@pytest.fixture(scope="session")
def suite_results():
    """The benchmarks x designs grid, computed once and disk-cached."""
    config = bench_config()
    benchmarks = bench_benchmarks()
    trace_cycles = int(os.environ.get("REPRO_BENCH_TRACE_CYCLES", "2500"))
    fingerprint = _fingerprint(config, benchmarks, trace_cycles)

    if SUITE_CACHE.exists() and os.environ.get("REPRO_BENCH_REFRESH") != "1":
        with SUITE_CACHE.open() as f:
            payload = json.load(f)
        if payload.get("fingerprint") == fingerprint:
            return {
                bench: {
                    design: RunResult.from_dict(result)
                    for design, result in row.items()
                }
                for bench, row in payload["results"].items()
            }

    default_jobs = min(len(DESIGN_ORDER), os.cpu_count() or 1)
    spec = SweepSpec(
        config=config,
        kind="suite",
        designs=DESIGN_ORDER,
        traffics=tuple(benchmarks),
        seeds=(11,),
        cycles=trace_cycles,
    )
    runner = SweepRunner(
        spec,
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", default_jobs)),
        cache_dir=SWEEP_CACHE_DIR,
        refresh=os.environ.get("REPRO_BENCH_REFRESH") == "1",
        progress=stderr_progress,
    )
    suite = merge_suite(runner.run())
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "fingerprint": fingerprint,
        "results": {
            bench: {
                design: result.constructor_dict() for design, result in row.items()
            }
            for bench, row in suite.items()
        },
    }
    with SUITE_CACHE.open("w") as f:
        json.dump(payload, f, indent=2)
    return suite


def print_figure(title, header, rows):
    """Uniform figure rendering for the bench output."""
    print(f"\n=== {title} ===")
    print("  ".join(f"{h:>12s}" for h in header))
    for row in rows:
        print("  ".join(f"{v:>12}" if isinstance(v, str) else f"{v:>12.3f}" for v in row))
