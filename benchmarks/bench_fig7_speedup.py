"""Fig. 7 — execution-time speed-up, normalized to the CRC baseline.

Paper (Section VI-A): the proposed architecture averages a 1.25x speed-up
over the CRC baseline, with larger gains for higher-traffic applications.
"""

from conftest import print_figure

from repro.sim import DESIGN_ORDER, geometric_mean

PAPER_AVERAGES = {"crc": 1.00, "arq_ecc": 1.15, "dt": 1.20, "rl": 1.25}


def figure_rows(suite):
    averages = {}
    rows = []
    for design in DESIGN_ORDER:
        speedups = [
            results["crc"].execution_cycles / results[design].execution_cycles
            for results in suite.values()
        ]
        averages[design] = geometric_mean(speedups)
        rows.append([design, PAPER_AVERAGES[design], averages[design]])
    return rows, averages


def test_fig7_speedup(suite_results, benchmark):
    rows, averages = benchmark.pedantic(
        figure_rows, args=(suite_results,), rounds=1, iterations=1
    )
    print_figure(
        "Fig. 7: execution-time speed-up (normalized to CRC)",
        ["design", "paper", "measured"],
        rows,
    )
    assert averages["crc"] == 1.0
    # Every fault-tolerant design finishes the same work no slower.
    for design in ("arq_ecc", "dt", "rl"):
        assert averages[design] >= 1.0
    # And a real speed-up materializes for the proposed design.
    assert averages["rl"] > 1.02


def test_fig7_higher_traffic_higher_speedup(suite_results):
    """The paper deduces the speed-up grows with traffic intensity —
    check the heaviest benchmark beats the lightest one."""
    by_load = sorted(
        suite_results.items(), key=lambda kv: kv[1]["crc"].flits_delivered
    )
    if len(by_load) < 2:
        return
    lightest = by_load[0][1]
    heaviest = by_load[-1][1]
    light_speedup = lightest["crc"].execution_cycles / lightest["rl"].execution_cycles
    heavy_speedup = heaviest["crc"].execution_cycles / heaviest["rl"].execution_cycles
    print(f"\nFig. 7 trend: lightest speedup {light_speedup:.3f}, heaviest {heavy_speedup:.3f}")
    assert heavy_speedup >= light_speedup * 0.95  # allow noise, forbid inversion
