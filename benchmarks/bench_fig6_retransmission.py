"""Fig. 6 — retransmission packets, normalized to the CRC baseline.

Paper (Section VI-A): the proposed RL framework achieves an average 48 %
retransmission reduction over the CRC baseline (normalized RL ~ 0.52);
ARQ+ECC achieves 33 % (~ 0.67); the DT baseline sits between ARQ+ECC and
RL.  Absolute numbers depend on the authors' testbed; this bench checks
the orderings and prints the measured series next to the paper's.
"""

from conftest import print_figure

from repro.sim import DESIGN_ORDER, geometric_mean, normalize_to_baseline

PAPER_AVERAGES = {"crc": 1.00, "arq_ecc": 0.67, "dt": 0.60, "rl": 0.52}


def figure_rows(suite):
    rows = []
    averages = {}
    for design in DESIGN_ORDER:
        normalized = {
            bench: normalize_to_baseline(
                results, lambda r: r.retransmission_events + 1
            )[design]
            for bench, results in suite.items()
        }
        averages[design] = geometric_mean(normalized.values())
        rows.append([design, PAPER_AVERAGES[design], averages[design]])
    return rows, averages


def test_fig6_retransmission(suite_results, benchmark):
    rows, averages = benchmark.pedantic(
        figure_rows, args=(suite_results,), rounds=1, iterations=1
    )
    print_figure(
        "Fig. 6: retransmission packets (normalized to CRC)",
        ["design", "paper", "measured"],
        rows,
    )
    # Shape: the learning designs beat the CRC baseline, and the proposed
    # RL design beats the static ARQ+ECC design.  Note on ARQ+ECC: our
    # metric counts each per-hop flit retransmission as one event, while a
    # CRC failure retransmits a whole packet as one event — on light
    # benchmarks this bookkeeping can push ARQ+ECC marginally above 1.0
    # even though each of its events is ~4x cheaper (see EXPERIMENTS.md);
    # the paper's coarser packet-level accounting reports 0.67.
    assert averages["arq_ecc"] < 1.10
    assert averages["dt"] < 1.0
    assert averages["rl"] < 1.0
    assert averages["rl"] < averages["arq_ecc"]
    # The paper's RL average is a 48 % reduction; ours must be a clear
    # substantial reduction too (>= 25 %).
    assert averages["rl"] < 0.75


def test_fig6_per_benchmark_series(suite_results):
    print("\nFig. 6 per-benchmark series (normalized to CRC):")
    for bench, results in sorted(suite_results.items()):
        normalized = normalize_to_baseline(results, lambda r: r.retransmission_events + 1)
        series = "  ".join(f"{d}={normalized[d]:.2f}" for d in DESIGN_ORDER)
        print(f"  {bench:14s} {series}")
        assert normalized["rl"] <= 1.5  # never pathologically worse
