#!/usr/bin/env python3
"""Compare the four fault-tolerant designs on one workload.

Reproduces one column of the paper's Figs 6-10 at example scale: static
CRC, static ARQ+ECC, the decision-tree predictor, and the proposed RL
policy all carry the *same* canneal-like trace, and the script prints
every evaluation metric normalized to the CRC baseline.

The four designs are independent simulations, so they run through the
sweep runner (:mod:`repro.sim.sweep`): ``--jobs 4`` runs them in
parallel, and cached points make a re-run instant.

Run:
    python examples/compare_designs.py [benchmark] [--jobs N] [--no-cache]
"""

import argparse

from repro.sim import (
    DESIGN_ORDER,
    SweepRunner,
    SweepSpec,
    merge_trace_grid,
    normalize_to_baseline,
    scaled_config,
    stderr_progress,
    synthesize_benchmark_trace,
)
from repro.sim.sweep import DEFAULT_CACHE_DIR
from repro.traffic import PARSEC_PROFILES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="canneal")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()
    benchmark = args.benchmark
    if benchmark not in PARSEC_PROFILES:
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; pick one of "
            f"{', '.join(sorted(PARSEC_PROFILES))}"
        )

    config = scaled_config(
        width=4,
        height=4,
        epoch_cycles=250,
        pretrain_cycles=40_000,
        warmup_cycles=2_000,
    )
    trace = synthesize_benchmark_trace(benchmark, config, cycles=3_000, seed=7)
    print(f"benchmark {benchmark}: {len(trace)} messages, 4x4 mesh")
    print("running 4 designs (learning designs pre-train first) ...\n")

    spec = SweepSpec(
        config=config,
        kind="trace",
        designs=DESIGN_ORDER,
        traffics=(benchmark,),
        seeds=(7,),
        cycles=3_000,
    )
    runner = SweepRunner(
        spec,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=stderr_progress,
    )
    grid = merge_trace_grid(runner.run())
    results = grid[(benchmark, 1.0, 7)]

    metrics = [
        ("E2E latency", lambda r: r.mean_latency, "lower"),
        ("retransmissions", lambda r: r.retransmission_events + 1, "lower"),
        ("energy efficiency", lambda r: r.energy_efficiency, "higher"),
        ("dynamic power", lambda r: r.dynamic_power_watts, "lower"),
        ("execution time", lambda r: r.execution_cycles, "lower"),
    ]
    header = f"{'metric':20s}" + "".join(f"{d:>10s}" for d in DESIGN_ORDER)
    print(header + "   (normalized to CRC)")
    print("-" * len(header))
    for name, metric, better in metrics:
        normalized = normalize_to_baseline(results, metric)
        row = f"{name:20s}" + "".join(f"{normalized[d]:>10.2f}" for d in DESIGN_ORDER)
        print(f"{row}   ({better} is better)")

    print("\nabsolute numbers:")
    for design in DESIGN_ORDER:
        r = results[design]
        print(
            f"  {design:8s} lat={r.mean_latency:7.1f}cyc "
            f"retx={r.retransmission_events:5d} "
            f"eff={r.energy_efficiency:8.0f}flits/uJ "
            f"dynP={r.dynamic_power_watts*1e3:6.1f}mW "
            f"T={r.mean_temperature:.0f}C"
        )


if __name__ == "__main__":
    main()
