#!/usr/bin/env python3
"""Render all five paper figures from the cached experiment grid.

Reads ``benchmarks/results/suite.json`` (produced by
``pytest benchmarks/``) and prints Figs 6-10 — per-benchmark series plus
the suite geometric mean next to the paper's reported averages — without
re-running any simulation.  If the cache is missing, it offers to compute
a reduced grid (three benchmarks) inline.

Run:
    python examples/paper_figures.py
"""

import json
import sys
from pathlib import Path

from repro.sim import (
    DESIGN_ORDER,
    RunResult,
    geometric_mean,
    run_parsec_suite,
    scaled_config,
)

CACHE = Path(__file__).parent.parent / "benchmarks" / "results" / "suite.json"

FIGURES = [
    ("Fig. 6  retransmissions (lower better)",
     lambda r: r.retransmission_events + 1,
     {"crc": 1.00, "arq_ecc": 0.67, "dt": 0.60, "rl": 0.52}),
    ("Fig. 7  execution speed-up (higher better)",
     None,  # special-cased: inverse of execution time
     {"crc": 1.00, "arq_ecc": 1.15, "dt": 1.20, "rl": 1.25}),
    ("Fig. 8  E2E latency (lower better)",
     lambda r: r.mean_latency,
     {"crc": 1.00, "arq_ecc": 0.70, "dt": 0.50, "rl": 0.45}),
    ("Fig. 9  energy efficiency (higher better)",
     lambda r: r.energy_efficiency,
     {"crc": 1.00, "arq_ecc": 1.35, "dt": 1.43, "rl": 1.64}),
    ("Fig. 10 dynamic power (lower better)",
     lambda r: r.dynamic_power_watts,
     {"crc": 1.00, "arq_ecc": 0.75, "dt": 0.65, "rl": 0.54}),
]


def load_suite():
    if CACHE.exists():
        with CACHE.open() as f:
            payload = json.load(f)
        return {
            bench: {d: RunResult.from_dict(r) for d, r in row.items()}
            for bench, row in payload["results"].items()
        }
    print("no cached grid found; computing a reduced one (3 benchmarks) ...")
    config = scaled_config(
        width=4, height=4, epoch_cycles=250,
        pretrain_cycles=60_000, warmup_cycles=2_000,
    )
    return run_parsec_suite(
        config, 2_500, benchmarks=["blackscholes", "ferret", "canneal"], seed=11
    )


def normalized_series(suite, metric, design):
    series = {}
    for bench, row in suite.items():
        if metric is None:  # speed-up
            series[bench] = row["crc"].execution_cycles / row[design].execution_cycles
        else:
            series[bench] = metric(row[design]) / metric(row["crc"])
    return series


def main() -> int:
    suite = load_suite()
    benches = sorted(suite)
    for title, metric, paper in FIGURES:
        print(f"\n=== {title} — normalized to CRC ===")
        print(f"{'benchmark':14s}" + "".join(f"{d:>9s}" for d in DESIGN_ORDER))
        per_design = {d: normalized_series(suite, metric, d) for d in DESIGN_ORDER}
        for bench in benches:
            print(
                f"{bench:14s}"
                + "".join(f"{per_design[d][bench]:>9.2f}" for d in DESIGN_ORDER)
            )
        print(f"{'GEOMEAN':14s}" + "".join(
            f"{geometric_mean(per_design[d].values()):>9.2f}" for d in DESIGN_ORDER
        ))
        print(f"{'paper avg':14s}" + "".join(
            f"{paper[d]:>9.2f}" for d in DESIGN_ORDER
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
