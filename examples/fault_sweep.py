#!/usr/bin/env python3
"""Sweep the timing-error level and watch each operation mode's trade-off.

Pins the whole mesh to each of the four operation modes in turn, sweeps a
flat per-transfer error probability across the channels (bypassing the
thermal loop), and prints latency / retransmissions / energy — the raw
trade-off surface (Section III) that the RL controller learns to navigate.

The 4 modes x 4 error levels grid runs through the sweep runner
(:mod:`repro.sim.sweep`), so points execute in parallel with ``--jobs``
and completed points are cached: re-running the example is instant.

Run:
    python examples/fault_sweep.py [--jobs N] [--no-cache]
"""

import argparse

from repro.core.modes import OperationMode
from repro.sim import SweepRunner, SweepSpec, scaled_config, stderr_progress
from repro.sim.sweep import DEFAULT_CACHE_DIR, MODE_DESIGNS

ERROR_LEVELS = (0.0, 0.01, 0.05, 0.15)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    spec = SweepSpec(
        config=scaled_config(width=4, height=4),
        kind="mode_error",
        designs=MODE_DESIGNS,
        traffics=("uniform",),
        error_probabilities=ERROR_LEVELS,
        seeds=(5,),
        cycles=250,  # packets injected per point
    )
    runner = SweepRunner(
        spec,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=stderr_progress,
    )
    results = runner.run()

    print("uniform random traffic, 4x4 mesh, whole mesh pinned per mode\n")
    print(f"{'p(error)':>9s} {'mode':>6s} {'latency':>9s} {'retx':>6s} "
          f"{'corrected':>10s} {'escaped':>8s} {'duplicates':>11s}")
    for i, error in enumerate(ERROR_LEVELS):
        for j, mode in enumerate(OperationMode):
            stats = results[i * len(OperationMode) + j].mode_stats
            print(
                f"{error:>9.2f} {int(mode):>6d} {stats['mean_latency']:>9.1f} "
                f"{stats['retransmission_events']:>6d} {stats['corrected_errors']:>10d} "
                f"{stats['escaped_errors']:>8d} {stats['duplicate_flits']:>11d}"
            )
        print()
    print("reading the table:")
    print("  - mode 0 is cheapest when clean but collapses as p grows;")
    print("  - mode 1 corrects singles, NACK-retransmits doubles per hop;")
    print("  - mode 2 trades duplicate bandwidth for fewer retransmissions;")
    print("  - mode 3 eliminates errors at a flat latency premium.")


if __name__ == "__main__":
    main()
