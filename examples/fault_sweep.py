#!/usr/bin/env python3
"""Sweep the timing-error level and watch each operation mode's trade-off.

Pins the whole mesh to each of the four operation modes in turn, sweeps a
flat per-transfer error probability across the channels (bypassing the
thermal loop), and prints latency / retransmissions / energy — the raw
trade-off surface (Section III) that the RL controller learns to navigate.

Run:
    python examples/fault_sweep.py
"""

import random

from repro.core.modes import OperationMode
from repro.noc import MeshTopology, Network, Packet


def run_point(mode: OperationMode, error: float, n_packets: int = 250, seed: int = 5):
    rng = random.Random(seed)
    net = Network(MeshTopology(4, 4), rng=random.Random(seed + 1))
    net.set_all_modes(mode)
    for _, model in net.channel_models():
        model.event_probability = error
    created = 0
    while created < n_packets or not net.quiescent:
        if created < n_packets and net.now % 2 == 0:
            src, dst = rng.randrange(16), rng.randrange(16)
            if src != dst:
                net.inject(
                    Packet(
                        src, dst, 4, 128, net.now,
                        payloads=[rng.getrandbits(128) for _ in range(4)],
                    )
                )
                created += 1
        net.cycle()
        if net.now > 500_000:
            raise RuntimeError("network failed to drain")
    net.harvest_epoch_counters(1)
    return net.stats


def main() -> None:
    print("uniform random traffic, 4x4 mesh, whole mesh pinned per mode\n")
    print(f"{'p(error)':>9s} {'mode':>6s} {'latency':>9s} {'retx':>6s} "
          f"{'corrected':>10s} {'escaped':>8s} {'duplicates':>11s}")
    for error in (0.0, 0.01, 0.05, 0.15):
        for mode in OperationMode:
            stats = run_point(mode, error)
            print(
                f"{error:>9.2f} {int(mode):>6d} {stats.mean_latency:>9.1f} "
                f"{stats.retransmission_events:>6d} {stats.corrected_errors:>10d} "
                f"{stats.escaped_errors:>8d} {stats.duplicate_flits:>11d}"
            )
        print()
    print("reading the table:")
    print("  - mode 0 is cheapest when clean but collapses as p grows;")
    print("  - mode 1 corrects singles, NACK-retransmits doubles per hop;")
    print("  - mode 2 trades duplicate bandwidth for fewer retransmissions;")
    print("  - mode 3 eliminates errors at a flat latency premium.")


if __name__ == "__main__":
    main()
