#!/usr/bin/env python3
"""Inspect what the RL controller actually learned.

Pre-trains the proposed policy on synthetic traffic, then dumps the
learned state -> mode mapping aggregated by the two most decision-
relevant features — temperature bin and NACK-rate bin — exactly the view
a designer would use to sanity-check the controller before tape-out.

Run:
    python examples/inspect_policy.py
"""

from collections import defaultdict
from statistics import mean

from repro import RLControlPolicy, Simulator, scaled_config
from repro.core.modes import OperationMode


def main() -> None:
    config = scaled_config(
        width=4,
        height=4,
        epoch_cycles=250,
        pretrain_cycles=60_000,
        warmup_cycles=0,
    )
    policy = RLControlPolicy(share_table=True, seed=4)
    sim = Simulator(config, policy, seed=4)
    print("pre-training (multi-load synthetic sweep + mode curriculum) ...")
    sim.pretrain()
    policy.freeze()
    print(
        f"  {policy.states_visited()} states visited, "
        f"{policy.total_updates()} Q-updates\n"
    )

    agent = policy._unique_agents()[0]
    # Compact state layout: (buf, in_util, out_util, in_nack, out_nack,
    # temp, current_mode) — aggregate Q by (temp, max nack).
    groups = defaultdict(list)
    for state, q_values in agent._table.items():
        temp_bin, nack_bin = state[5], max(state[3], state[4])
        groups[(temp_bin, nack_bin)].append(q_values)

    print("learned policy by (temperature bin, NACK bin):")
    print(f"{'temp':>5s} {'nack':>5s} {'states':>7s}  "
          + "  ".join(f"Q(mode{m})" for m in range(4)) + "   greedy")
    for (temp_bin, nack_bin), rows in sorted(groups.items()):
        avg = [mean(r[a] for r in rows) for a in range(4)]
        greedy = max(range(4), key=lambda a: avg[a])
        cells = "  ".join(f"{v:8.2f}" for v in avg)
        print(f"{temp_bin:>5d} {nack_bin:>5d} {len(rows):>7d}  {cells}   mode {greedy}")

    dist = policy.mode_distribution()
    total = sum(dist.values()) or 1
    print("\ngreedy-mode share over all visited states:")
    for mode in OperationMode:
        print(f"  mode {int(mode)}: {dist[mode] / total:6.1%}")
    print(
        "\nexpected shape: cool/quiet states prefer mode 0 (save power),\n"
        "warm states with NACK activity prefer modes 1-2, and the hottest\n"
        "states prefer the heavier protection of modes 2-3."
    )


if __name__ == "__main__":
    main()
