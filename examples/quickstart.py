#!/usr/bin/env python3
"""Quickstart: the proposed RL-controlled fault-tolerant NoC in ~40 lines.

Builds a 4x4 mesh platform, pre-trains the per-router RL agents on
synthetic traffic (scaled-down counterpart of the paper's 1M-cycle
phase), replays a PARSEC-like trace, and prints the evaluation metrics.

Run:
    python examples/quickstart.py
"""

from repro import RLControlPolicy, Simulator, scaled_config
from repro.sim import synthesize_benchmark_trace


def main() -> None:
    # A scaled-down platform: the paper's Table II microarchitecture on a
    # 4x4 mesh with shortened control-loop phases (see DESIGN.md §7).
    config = scaled_config(
        width=4,
        height=4,
        epoch_cycles=250,
        pretrain_cycles=40_000,
        warmup_cycles=2_000,
    )

    # The proposed design: per-router tabular Q-learning over the four
    # fault-tolerant operation modes (shared table = scaled-run default).
    policy = RLControlPolicy(share_table=True, seed=0)
    sim = Simulator(config, policy, seed=0)

    print("pre-training on synthetic traffic ...")
    sim.pretrain()
    policy.freeze()
    print(
        f"  visited {policy.states_visited()} states, "
        f"{policy.total_updates()} Q-updates"
    )

    sim.warmup()

    trace = synthesize_benchmark_trace("ferret", config, cycles=3_000, seed=0)
    print(f"replaying ferret-like trace ({len(trace)} messages) ...")
    result = sim.measure_trace(trace, "ferret")

    print("\nmeasured (testing phase):")
    print(f"  execution time      : {result.execution_cycles} cycles")
    print(f"  mean E2E latency    : {result.mean_latency:.1f} cycles")
    print(f"  retransmissions     : {result.retransmission_events} events")
    print(f"  corrected errors    : {result.corrected_errors}")
    print(f"  energy efficiency   : {result.energy_efficiency:.0f} flits/uJ")
    print(f"  dynamic power       : {result.dynamic_power_watts * 1e3:.1f} mW")
    print(f"  mean die temperature: {result.mean_temperature:.1f} C")
    total = sum(result.mode_cycles.values())
    shares = ", ".join(
        f"mode {m}: {c / total:.0%}" for m, c in sorted(result.mode_cycles.items())
    )
    print(f"  mode residency      : {shares}")


if __name__ == "__main__":
    main()
